type wrec = {
  w_id : int;
  w_fid : Log.fid;
  w_off : int;
  w_len : int;
  w_flow : int;  (* causal flow id, Sim.Trace.no_flow when untraced *)
  mutable w_acked : bool;
  mutable w_durable : bool;
  mutable w_cancelled : bool;  (* superseded before reaching disk *)
  mutable w_agent_copy : bool;
  mutable w_server_copy : bool;
  mutable w_flush_ev : Sim.Engine.event_id option;
}

type write_id = wrec

module Server = struct
  type t = {
    engine : Sim.Engine.t;
    log : Log.t;
    write_delay : Sim.Time.t;
    ups : bool;
    nvram : bool;  (* battery-backed buffers survive the crash *)
    mutable is_crashed : bool;
    mutable records : wrec list;  (* every write ever, for auditing *)
    mutable next_id : int;
    mutable received : int;
    mutable to_disk : int;
    mutable cancelled : int;
    mutable on_durable : (wrec -> unit) option;  (* notify agents *)
  }

  let create engine ~log ?(write_delay = Sim.Time.sec 30) ?(ups = false)
      ?(nvram = false) () =
    {
      engine;
      log;
      write_delay;
      ups;
      nvram;
      is_crashed = false;
      records = [];
      next_id = 0;
      received = 0;
      to_disk = 0;
      cancelled = 0;
      on_durable = None;
    }

  let create_file t = Log.create_file t.log ()
  let crashed t = t.is_crashed

  let flush_write t w =
    (match w.w_flush_ev with
    | Some ev ->
        ignore (Sim.Engine.cancel t.engine ev);
        w.w_flush_ev <- None
    | None -> ());
    if w.w_server_copy && not (w.w_durable || w.w_cancelled) then begin
      w.w_server_copy <- false;
      if Log.file_exists t.log w.w_fid then begin
        t.to_disk <- t.to_disk + 1;
        Log.write t.log w.w_fid ~off:w.w_off ~flow:w.w_flow ~len:w.w_len
          (fun _ ->
            w.w_durable <- true;
            (if w.w_flow >= 0 then
               let tr = Sim.Engine.trace t.engine in
               if Sim.Trace.flows_on tr then
                 Sim.Trace.flow_end tr
                   ~ts:(Sim.Engine.now t.engine)
                   ~sub:Sim.Subsystem.Pfs ~cat:"pfs" ~flow:w.w_flow "durable");
            match t.on_durable with Some f -> f w | None -> ())
      end
      else begin
        (* The file is gone: the write was logically cancelled. *)
        w.w_cancelled <- true;
        t.cancelled <- t.cancelled + 1
      end
    end

  (* A new write supersedes older pending writes it fully covers. *)
  let supersede t ~fid ~off ~len =
    List.iter
      (fun w ->
        if
          w.w_server_copy && (not w.w_durable) && (not w.w_cancelled)
          && w.w_fid = fid && off <= w.w_off
          && w.w_off + w.w_len <= off + len
        then begin
          w.w_cancelled <- true;
          w.w_server_copy <- false;
          t.cancelled <- t.cancelled + 1;
          match w.w_flush_ev with
          | Some ev ->
              ignore (Sim.Engine.cancel t.engine ev);
              w.w_flush_ev <- None
          | None -> ()
        end)
      t.records

  (* Receive a write from an agent (internal: called by Agent). *)
  let receive t w =
    if not t.is_crashed then begin
      t.received <- t.received + 1;
      (if w.w_flow >= 0 then
         let tr = Sim.Engine.trace t.engine in
         if Sim.Trace.flows_on tr then
           Sim.Trace.flow_step tr
             ~ts:(Sim.Engine.now t.engine)
             ~sub:Sim.Subsystem.Pfs ~cat:"pfs" ~flow:w.w_flow "srv.buffer");
      supersede t ~fid:w.w_fid ~off:w.w_off ~len:w.w_len;
      w.w_server_copy <- true;
      if not (List.memq w t.records) then t.records <- w :: t.records;
      w.w_flush_ev <-
        Some (Sim.Engine.schedule t.engine ~delay:t.write_delay (fun () ->
                  w.w_flush_ev <- None;
                  flush_write t w));
      true
    end
    else false

  let delete_file t fid =
    if not t.is_crashed then begin
      List.iter
        (fun w ->
          if
            w.w_server_copy && (not w.w_durable) && (not w.w_cancelled)
            && w.w_fid = fid
          then begin
            w.w_cancelled <- true;
            w.w_server_copy <- false;
            t.cancelled <- t.cancelled + 1;
            match w.w_flush_ev with
            | Some ev ->
                ignore (Sim.Engine.cancel t.engine ev);
                w.w_flush_ev <- None
            | None -> ()
          end)
        t.records;
      if Log.file_exists t.log fid then Log.delete t.log fid ~k:(fun _ -> ())
    end

  let flush_all t =
    List.iter (fun w -> if w.w_server_copy then flush_write t w) t.records

  let crash t =
    if t.ups then
      (* The UPS gives the server time to write its volatile buffers. *)
      flush_all t;
    t.is_crashed <- true;
    List.iter
      (fun w ->
        if w.w_server_copy && not w.w_durable then begin
          (* Battery-backed memory keeps the buffered data across the
             crash; only the pending flush timer is lost. *)
          if not t.nvram then w.w_server_copy <- false;
          match w.w_flush_ev with
          | Some ev ->
              ignore (Sim.Engine.cancel t.engine ev);
              w.w_flush_ev <- None
          | None -> ()
        end)
      t.records

  let recover t =
    t.is_crashed <- false;
    (* Recovery replays whatever NVRAM preserved. *)
    if t.nvram then flush_all t
  let writes_received t = t.received
  let disk_writes t = t.to_disk
  let writes_cancelled t = t.cancelled

  let pending t =
    List.length
      (List.filter
         (fun w -> w.w_server_copy && (not w.w_durable) && not w.w_cancelled)
         t.records)
end

module Agent = struct
  type t = {
    engine : Sim.Engine.t;
    server : Server.t;
    net_delay : Sim.Time.t;
    retry_delay : Sim.Time.t;
    retry_cap : Sim.Time.t;
    rng : Sim.Rng.t;
    mutable is_crashed : bool;
    mutable copies : wrec list;
    mutable acked : int;
    mutable retries : int;
  }

  let create engine ~server ?(net_delay = Sim.Time.ms 1)
      ?(retry_delay = Sim.Time.ms 100) ?(retry_cap = Sim.Time.sec 10) ?seed ()
      =
    let t =
      {
        engine;
        server;
        net_delay;
        retry_delay;
        retry_cap;
        rng = Sim.Rng.create ?seed ();
        is_crashed = false;
        copies = [];
        acked = 0;
        retries = 0;
      }
    in
    (* Durability notifications let the agent drop its copies. *)
    server.Server.on_durable <-
      Some
        (fun w ->
          ignore
            (Sim.Engine.schedule engine ~delay:net_delay (fun () ->
                 w.w_agent_copy <- false;
                 t.copies <- List.filter (fun c -> not (c == w)) t.copies)));
    t

  (* Capped exponential backoff with jitter for re-offering a write to
     a crashed server.  Retry events are daemons: a server that never
     recovers must not keep an unbounded run alive. *)
  let backoff t attempt =
    let shift = Stdlib.min attempt 16 in
    let base =
      Sim.Time.min (Sim.Time.mul t.retry_delay (1 lsl shift)) t.retry_cap
    in
    let f = Sim.Rng.uniform t.rng ~lo:0.9 ~hi:1.1 in
    Sim.Time.max (Sim.Time.ns 1)
      (Sim.Time.of_sec_f (Sim.Time.to_sec_f base *. f))

  let send t w ~ack =
    let rec offer ~attempt () =
      (* The write may have been resolved some other way while we were
         backing off (superseded, deleted, replayed after recovery, or
         the agent itself crashed and dropped its copy). *)
      let still_wanted =
        (not t.is_crashed) && w.w_agent_copy && (not w.w_durable)
        && (not w.w_cancelled)
        && not w.w_server_copy
      in
      if still_wanted || attempt = 0 then begin
        if Server.receive t.server w then
          (* Acknowledgement comes back one net delay later. *)
          ignore
            (Sim.Engine.schedule t.engine ~delay:t.net_delay (fun () ->
                 if not w.w_acked then begin
                   w.w_acked <- true;
                   t.acked <- t.acked + 1;
                   match ack with Some f -> f () | None -> ()
                 end))
        else begin
          (* Server down: keep the copy and try again later. *)
          t.retries <- t.retries + 1;
          ignore
            (Sim.Engine.schedule ~daemon:true t.engine
               ~delay:(backoff t attempt)
               (offer ~attempt:(attempt + 1)))
        end
      end
    in
    ignore (Sim.Engine.schedule t.engine ~delay:t.net_delay (offer ~attempt:0))

  let write t ~fid ~off ~len ?ack () =
    let server = t.server in
    (* Each application write is one causal flow: agent buffer → server
       buffer → (30 s later, unless cancelled) the log, RAID and disks.
       Superseded writes never reach "durable", so the audit shows them
       as incomplete flows — exactly the paper's point about write
       cancellation. *)
    let flow =
      let tr = Sim.Engine.trace t.engine in
      if Sim.Trace.flows_on tr then begin
        let f = Sim.Trace.alloc_flow tr in
        Sim.Trace.flow_start tr
          ~ts:(Sim.Engine.now t.engine)
          ~sub:Sim.Subsystem.Pfs ~cat:"pfs"
          ~args:[ ("stream", Sim.Trace.Str "pfs:agent") ]
          ~flow:f "agent.write";
        f
      end
      else Sim.Trace.no_flow
    in
    let w =
      {
        w_id = server.Server.next_id;
        w_fid = fid;
        w_off = off;
        w_len = len;
        w_flow = flow;
        w_acked = false;
        w_durable = false;
        w_cancelled = false;
        w_agent_copy = true;
        w_server_copy = false;
        w_flush_ev = None;
      }
    in
    server.Server.next_id <- server.Server.next_id + 1;
    server.Server.records <- w :: server.Server.records;
    t.copies <- w :: t.copies;
    send t w ~ack;
    w

  let delete t ~fid =
    ignore
      (Sim.Engine.schedule t.engine ~delay:t.net_delay (fun () ->
           Server.delete_file t.server fid))

  let crash t =
    t.is_crashed <- true;
    List.iter (fun w -> w.w_agent_copy <- false) t.copies;
    t.copies <- []

  let replay t =
    if not t.is_crashed then
      List.iter
        (fun w ->
          if
            w.w_agent_copy && (not w.w_durable) && (not w.w_cancelled)
            && not w.w_server_copy
          then send t w ~ack:None)
        t.copies

  let recover t =
    t.is_crashed <- false;
    (* Recovery re-offers every surviving copy the server lost. *)
    replay t

  let copies_held t = List.length t.copies
  let acked_writes t = t.acked
  let retries t = t.retries
end

type audit = {
  acknowledged : int;
  durable : int;
  recoverable : int;
  lost : int;
}

let audit (server : Server.t) =
  let acknowledged = ref 0
  and durable = ref 0
  and recoverable = ref 0
  and lost = ref 0 in
  List.iter
    (fun w ->
      if w.w_acked && not w.w_cancelled then begin
        incr acknowledged;
        (* A server-side copy flag survives a crash only when NVRAM
           holds the data, so the flag itself means "recoverable". *)
        if w.w_durable then incr durable
        else if w.w_agent_copy || w.w_server_copy then incr recoverable
        else incr lost
      end)
    server.Server.records;
  {
    acknowledged = !acknowledged;
    durable = !durable;
    recoverable = !recoverable;
    lost = !lost;
  }

let pp_audit fmt a =
  Format.fprintf fmt "acked=%d durable=%d recoverable=%d lost=%d" a.acknowledged
    a.durable a.recoverable a.lost
