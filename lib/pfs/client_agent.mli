(** Client-agent / server write buffering (paper §5, reliability).

    Client and server machines crash independently.  On a write, the
    client agent sends the data to the server and keeps a copy in its
    own buffers; when the server receives the data it acknowledges, and
    the application is unblocked.  The data is now safe against any
    single failure: if the server crashes, the agent replays; if the
    client crashes, the server completes the write.  Only simultaneous
    failure (a power cut) can lose data — unless the server has a UPS
    and flushes its volatile buffers before halting.

    The server delays disk writes (default 30 s): Baker et al. measured
    that 70 % of files die within 30 s, so most buffered writes are
    cancelled by an overwrite or delete before costing any disk I/O —
    and the data that does reach the log is stable, creating garbage at
    a far lower rate. *)

type write_id

(** The file-server machine. *)
module Server : sig
  type t

  val create :
    Sim.Engine.t -> log:Log.t -> ?write_delay:Sim.Time.t -> ?ups:bool ->
    ?nvram:bool -> unit -> t
  (** [write_delay] defaults to 30 s.  [ups] models an uninterruptible
      power supply (volatile buffers are flushed during the shutdown
      grace); [nvram] models battery-backed memory (buffers survive
      the crash and are flushed on recovery).  Both default to false. *)

  val create_file : t -> Log.fid
  val crash : t -> unit
  (** Volatile buffers are lost — unless [ups], in which case they are
      flushed to the log during the shutdown grace. *)

  val recover : t -> unit
  (** With [nvram], recovery flushes the preserved buffers. *)

  val crashed : t -> bool

  val flush_all : t -> unit
  (** Force every pending write to the log now. *)

  (** {2 Statistics} *)

  val writes_received : t -> int
  val disk_writes : t -> int
  (** Writes that actually reached the log. *)

  val writes_cancelled : t -> int
  (** Pending writes superseded by an overwrite or delete. *)

  val pending : t -> int
end

(** The client-machine agent. *)
module Agent : sig
  type t

  val create :
    Sim.Engine.t -> server:Server.t -> ?net_delay:Sim.Time.t ->
    ?retry_delay:Sim.Time.t -> ?retry_cap:Sim.Time.t -> ?seed:int64 ->
    unit -> t
  (** [net_delay] (default 1 ms) is the one-way client-server latency.
      When the server is down, the agent re-offers each unacknowledged
      write with capped exponential backoff: starting at [retry_delay]
      (default 100 ms), doubling up to [retry_cap] (default 10 s), with
      ±10 % jitter drawn from a deterministic stream seeded by [seed].
      Retry events are daemons, so a server that never recovers does
      not keep a simulation run alive. *)

  val write :
    t -> fid:Log.fid -> off:int -> len:int -> ?ack:(unit -> unit) -> unit ->
    write_id
  (** Send a write.  [ack] runs when the server's acknowledgement
      arrives (the application unblocks); the agent keeps its copy
      until the server reports the data durable.  If the server is
      down, the agent keeps retrying (see {!create}) until the write is
      accepted, superseded, or the agent itself crashes. *)

  val delete : t -> fid:Log.fid -> unit

  val crash : t -> unit
  (** The agent's buffered copies are lost. *)

  val recover : t -> unit
  (** Bring the agent back and immediately {!replay} surviving copies. *)

  val replay : t -> unit
  (** Resend every held copy that the server no longer has (run after
      the server recovers from a crash). *)

  val copies_held : t -> int
  val acked_writes : t -> int

  val retries : t -> int
  (** Write offers that found the server down and were rescheduled. *)
end

(** {1 Auditing} *)

type audit = {
  acknowledged : int;  (** writes acknowledged to applications *)
  durable : int;  (** of those, now in the log *)
  recoverable : int;  (** not yet durable but a copy survives somewhere *)
  lost : int;  (** acknowledged yet gone — must stay 0 under any single
                   failure *)
}

val audit : Server.t -> audit

val pp_audit : Format.formatter -> audit -> unit
