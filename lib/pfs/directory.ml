type transport = {
  t_request : client:int -> server:int -> flow:int -> k:(unit -> unit) -> unit;
  t_respond :
    server:int -> client:int -> flow:int -> len:int -> k:(unit -> unit) -> unit;
  t_copy : src:int -> dst:int -> len:int -> k:(unit -> unit) -> unit;
}

let loopback ?(delay = Sim.Time.us 50) engine =
  let send k = ignore (Sim.Engine.schedule engine ~delay (fun () -> k ())) in
  {
    t_request = (fun ~client:_ ~server:_ ~flow:_ ~k -> send k);
    t_respond = (fun ~server:_ ~client:_ ~flow:_ ~len:_ ~k -> send k);
    t_copy = (fun ~src:_ ~dst:_ ~len:_ ~k -> send k);
  }

type config = {
  replicate : bool;
  per_replica_rate : float;
  max_replicas : int;
  ewma_tau : Sim.Time.t;
  review_period : Sim.Time.t;
  shrink_hysteresis : float;
  cache_blocks : int;
  cache_block_bytes : int;
  replica_seg_base : int;
}

let default_config =
  {
    replicate = true;
    per_replica_rate = 40.0;
    max_replicas = 3;
    ewma_tau = Sim.Time.ms 250;
    review_period = Sim.Time.ms 25;
    shrink_hysteresis = 0.5;
    cache_blocks = 0;
    cache_block_bytes = 8192;
    replica_seg_base = 2048;
  }

(* A replica: the file's extent map snapshotted at copy time, with
   each home segment re-addressed to a copy living in this server's
   array above [replica_seg_base].  Sealed segments are immutable, so
   the snapshot can only go stale through a version bump — which drops
   the whole replica — never through in-place mutation. *)
type replica = {
  rp_version : int;
  rp_extents : (int * int * int * int) list;  (* (foff, rseg, soff, len) *)
  rp_segs : int list;  (* the rsegs, for recycling on drop *)
  rp_bytes : int;
}

type server = {
  sv_log : Log.t;
  sv_cache : Cache.t option;
  sv_replicas : (int, replica) Hashtbl.t;  (* global fid -> copy *)
  mutable sv_next_rseg : int;
  mutable sv_free_rsegs : int list;
  mutable sv_outstanding : int;
  mutable sv_reads : int;
  mutable sv_replica_bytes : int;
}

type fentry = {
  f_home : int;
  f_lfid : Log.fid;
  mutable f_version : int;
  mutable f_rate : float;
  mutable f_rate_at : Sim.Time.t;
  mutable f_replicas : int list;  (* most recent first *)
  mutable f_copying : int list;  (* destinations with a copy in flight *)
  mutable f_rr : int;  (* rotation cursor *)
}

type t = {
  engine : Sim.Engine.t;
  cfg : config;
  servers : server array;
  transport : transport;
  files : (int, fentry) Hashtbl.t;
  mutable next_gfid : int;
  tau_sec : float;
  mutable n_reads : int;
  mutable n_home : int;
  mutable n_replica : int;
  mutable n_cached : int;
  mutable n_rep_started : int;
  mutable n_rep_completed : int;
  mutable n_rep_discarded : int;
  mutable n_dropped : int;
  mutable n_invalidations : int;
  m_reads : Sim.Metrics.counter;
  m_replica_reads : Sim.Metrics.counter;
  m_replications : Sim.Metrics.counter;
  m_read_win : Sim.Metrics.observer;
  m_copy_lag_win : Sim.Metrics.observer;
}

let make engine ~logs ~transport ~config =
  if Array.length logs = 0 then invalid_arg "Directory.create: no servers";
  if config.max_replicas >= Array.length logs then
    invalid_arg "Directory.create: max_replicas must leave room for the home";
  let metrics = Sim.Engine.metrics engine in
  let servers =
    Array.mapi
      (fun _i log ->
        {
          sv_log = log;
          sv_cache =
            (if config.cache_blocks > 0 then
               Some (Cache.create ~capacity_blocks:config.cache_blocks ())
             else None);
          sv_replicas = Hashtbl.create 16;
          sv_next_rseg = config.replica_seg_base;
          sv_free_rsegs = [];
          sv_outstanding = 0;
          sv_reads = 0;
          sv_replica_bytes = 0;
        })
      logs
  in
  let t =
    {
      engine;
      cfg = config;
      servers;
      transport;
      files = Hashtbl.create 64;
      next_gfid = 0;
      tau_sec = Sim.Time.to_sec_f config.ewma_tau;
      n_reads = 0;
      n_home = 0;
      n_replica = 0;
      n_cached = 0;
      n_rep_started = 0;
      n_rep_completed = 0;
      n_rep_discarded = 0;
      n_dropped = 0;
      n_invalidations = 0;
      m_reads =
        Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Pfs
          ~help:"reads routed by the replication directory" "dir.reads";
      m_replica_reads =
        Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Pfs
          ~help:"reads served from a replica copy" "dir.replica_reads";
      m_replications =
        Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Pfs
          ~help:"replica copies installed" "dir.replications";
      m_read_win =
        Sim.Metrics.observer metrics ~sub:Sim.Subsystem.Pfs
          ~help:"windowed end-to-end directory read latency samples (us)"
          "dir.read_latency_win_us";
      m_copy_lag_win =
        Sim.Metrics.observer metrics ~sub:Sim.Subsystem.Pfs
          ~help:"windowed replica-copy lag samples, start to install (us)"
          "dir.copy_lag_win_us";
    }
  in
  t

let server_count t = Array.length t.servers
let server_log t i = t.servers.(i).sv_log

let find_file t gfid =
  match Hashtbl.find_opt t.files gfid with
  | Some fe -> fe
  | None -> raise Not_found

let home_of t gfid = (find_file t gfid).f_home
let replicas_of t gfid = (find_file t gfid).f_replicas

let create_file t ?kind () =
  let gfid = t.next_gfid in
  t.next_gfid <- t.next_gfid + 1;
  let home = gfid mod Array.length t.servers in
  let lfid = Log.create_file t.servers.(home).sv_log ?kind () in
  Hashtbl.replace t.files gfid
    {
      f_home = home;
      f_lfid = lfid;
      f_version = 0;
      f_rate = 0.0;
      f_rate_at = Sim.Engine.now t.engine;
      f_replicas = [];
      f_copying = [];
      f_rr = 0;
    };
  gfid

(* {1 Popularity accounting} *)

let decay t fe =
  let now = Sim.Engine.now t.engine in
  let dt = Sim.Time.to_sec_f (Sim.Time.sub now fe.f_rate_at) in
  if dt > 0.0 then begin
    fe.f_rate <- fe.f_rate *. exp (-.dt /. t.tau_sec);
    fe.f_rate_at <- now
  end

let rate_of t gfid =
  let fe = find_file t gfid in
  decay t fe;
  fe.f_rate

(* {1 Replica lifecycle} *)

let alloc_rseg t sv =
  match sv.sv_free_rsegs with
  | r :: rest ->
      sv.sv_free_rsegs <- rest;
      r
  | [] ->
      if Log.total_segments sv.sv_log >= t.cfg.replica_seg_base then
        invalid_arg
          "Directory: log grew into the replica segment space \
           (raise replica_seg_base)";
      let r = sv.sv_next_rseg in
      sv.sv_next_rseg <- r + 1;
      r

(* Remove the replica of [gfid] held on server [dst], recycling its
   segments. *)
let remove_replica t ~gfid ~dst =
  let sv = t.servers.(dst) in
  match Hashtbl.find_opt sv.sv_replicas gfid with
  | None -> ()
  | Some rep ->
      Hashtbl.remove sv.sv_replicas gfid;
      sv.sv_free_rsegs <- rep.rp_segs @ sv.sv_free_rsegs;
      sv.sv_replica_bytes <- sv.sv_replica_bytes - rep.rp_bytes;
      t.n_dropped <- t.n_dropped + 1

let invalidate_replicas t gfid fe =
  if fe.f_replicas <> [] then begin
    List.iter (fun dst -> remove_replica t ~gfid ~dst) fe.f_replicas;
    fe.f_replicas <- [];
    t.n_invalidations <- t.n_invalidations + 1
  end

(* Copy the file's sealed segments onto [dst]: read each segment from
   the home array, cross the fabric, write it into the destination
   array above [replica_seg_base], then install the snapshot — unless
   the file's version moved while the copy was in flight, in which
   case everything is discarded (the invalidation already dropped the
   installed replicas; this drops the one being built). *)
let start_copy t gfid fe ~dst =
  let home = t.servers.(fe.f_home) in
  let dsv = t.servers.(dst) in
  let v = fe.f_version in
  let copy_started = Sim.Engine.now t.engine in
  t.n_rep_started <- t.n_rep_started + 1;
  fe.f_copying <- dst :: fe.f_copying;
  let seg_bytes = Log.segment_bytes home.sv_log in
  let finish_copy ok rsegs =
    fe.f_copying <- List.filter (fun d -> d <> dst) fe.f_copying;
    match ok with
    | Some (extents, mapping) when fe.f_version = v && Hashtbl.mem t.files gfid
      ->
        let rmap seg = List.assoc seg mapping in
        let rp_extents =
          List.map (fun (foff, seg, soff, len) -> (foff, rmap seg, soff, len)) extents
        in
        let bytes = List.length rsegs * seg_bytes in
        Hashtbl.replace dsv.sv_replicas gfid
          { rp_version = v; rp_extents; rp_segs = rsegs; rp_bytes = bytes };
        dsv.sv_replica_bytes <- dsv.sv_replica_bytes + bytes;
        fe.f_replicas <- dst :: fe.f_replicas;
        t.n_rep_completed <- t.n_rep_completed + 1;
        Sim.Metrics.incr t.m_replications;
        Sim.Metrics.sample t.m_copy_lag_win
          (Sim.Time.to_us_f
             (Sim.Time.sub (Sim.Engine.now t.engine) copy_started))
    | _ ->
        dsv.sv_free_rsegs <- rsegs @ dsv.sv_free_rsegs;
        t.n_rep_discarded <- t.n_rep_discarded + 1
  in
  let proceed () =
    (* Re-check: a write during the seal means the snapshot below
       would mix sealed and open extents. *)
    if fe.f_version <> v || not (Log.file_sealed home.sv_log fe.f_lfid) then
      finish_copy None []
    else begin
      let extents = Log.file_extents home.sv_log fe.f_lfid in
      let segs =
        List.sort_uniq compare (List.map (fun (_, seg, _, _) -> seg) extents)
      in
      let rec copy_seg remaining mapping rsegs =
        match remaining with
        | [] -> finish_copy (Some (extents, mapping)) rsegs
        | seg :: rest ->
            Raid.read_segment (Log.raid home.sv_log) ~seg ~k:(fun r ->
                match r with
                | Error `Lost -> finish_copy None rsegs
                | Ok data ->
                    t.transport.t_copy ~src:fe.f_home ~dst ~len:seg_bytes
                      ~k:(fun () ->
                        let rseg = alloc_rseg t dsv in
                        Raid.write_segment (Log.raid dsv.sv_log) ~seg:rseg
                          ?data (fun wr ->
                            match wr with
                            | Error `Lost -> finish_copy None (rseg :: rsegs)
                            | Ok () ->
                                copy_seg rest ((seg, rseg) :: mapping)
                                  (rseg :: rsegs))))
      in
      copy_seg segs [] []
    end
  in
  if Log.file_sealed home.sv_log fe.f_lfid then proceed ()
  else
    (* Seal first: replication moves whole sealed segments, never
       bytes still sitting in an open segment buffer. *)
    Log.sync home.sv_log ~k:(fun _ -> proceed ())

(* Grow toward [rate / per_replica_rate] one copy at a time; shrink
   (most recent replica first) only once the rate falls through the
   hysteresis band. *)
let maybe_adjust t gfid fe =
  if t.cfg.replicate then begin
    let live = List.length fe.f_replicas in
    let inflight = List.length fe.f_copying in
    let target =
      Stdlib.min t.cfg.max_replicas
        (int_of_float (fe.f_rate /. t.cfg.per_replica_rate))
    in
    if target > live + inflight then begin
      (* First shard, scanning from the home, not already involved. *)
      let n = Array.length t.servers in
      let rec pick k =
        if k >= n then None
        else
          let cand = (fe.f_home + k) mod n in
          if
            List.mem cand fe.f_replicas
            || List.mem cand fe.f_copying
            || cand = fe.f_home
          then pick (k + 1)
          else Some cand
      in
      match pick 1 with
      | Some dst -> start_copy t gfid fe ~dst
      | None -> ()
    end
    else if
      live > 0
      && fe.f_rate
         < t.cfg.per_replica_rate *. float_of_int live *. t.cfg.shrink_hysteresis
    then begin
      match fe.f_replicas with
      | dst :: rest ->
          fe.f_replicas <- rest;
          remove_replica t ~gfid ~dst
      | [] -> ()
    end
  end

let review t =
  for gfid = 0 to t.next_gfid - 1 do
    match Hashtbl.find_opt t.files gfid with
    | None -> ()
    | Some fe ->
        decay t fe;
        maybe_adjust t gfid fe
  done

let create engine ~logs ~transport ?(config = default_config) () =
  let t = make engine ~logs ~transport ~config in
  Sim.Engine.every ~daemon:true engine ~period:config.review_period (fun () ->
      review t;
      true);
  t

let note_read t gfid fe =
  decay t fe;
  fe.f_rate <- fe.f_rate +. (1.0 /. t.tau_sec);
  t.n_reads <- t.n_reads + 1;
  Sim.Metrics.incr t.m_reads;
  maybe_adjust t gfid fe

(* {1 The write path: home shard only} *)

let write t gfid ~off ?data ~len k =
  match Hashtbl.find_opt t.files gfid with
  | None -> k (Error `No_such_file)
  | Some fe ->
      fe.f_version <- fe.f_version + 1;
      invalidate_replicas t gfid fe;
      let home = t.servers.(fe.f_home) in
      (match home.sv_cache with
      | Some cache -> Cache.invalidate_file cache ~fid:gfid
      | None -> ());
      Log.write home.sv_log fe.f_lfid ~off ?data ~len k

let delete t gfid ~k =
  match Hashtbl.find_opt t.files gfid with
  | None -> k (Error `No_such_file)
  | Some fe ->
      fe.f_version <- fe.f_version + 1;
      invalidate_replicas t gfid fe;
      let home = t.servers.(fe.f_home) in
      (match home.sv_cache with
      | Some cache -> Cache.invalidate_file cache ~fid:gfid
      | None -> ());
      Hashtbl.remove t.files gfid;
      Log.delete home.sv_log fe.f_lfid ~k

let sync t ~k =
  let n = Array.length t.servers in
  let pending = ref n in
  let failed = ref false in
  Array.iter
    (fun sv ->
      Log.sync sv.sv_log ~k:(fun r ->
          (match r with Error _ -> failed := true | Ok () -> ());
          decr pending;
          if !pending = 0 then k (if !failed then Error `Lost else Ok ())))
    t.servers

(* {1 The read path} *)

let flow_step t flow name =
  if flow >= 0 then begin
    let tr = Sim.Engine.trace t.engine in
    if Sim.Trace.flows_on tr then
      Sim.Trace.flow_step tr
        ~ts:(Sim.Engine.now t.engine)
        ~sub:Sim.Subsystem.Pfs ~cat:"pfs" ~flow name
  end

(* Serve a read from the replica copy on [sv]: timing against this
   server's array, bytes from the copied segments when the array
   stores data.  Mirrors {!Log.read_flow}'s shape, including holes
   reading as zeros. *)
let replica_read t sv rep ~off ~len ~flow ~k =
  flow_step t flow "pfs.replica";
  let raid = Log.raid sv.sv_log in
  let stores = Raid.stores_data raid in
  let out = if stores then Some (Bytes.make len '\000') else None in
  let outstanding = ref 1 in
  let failed = ref false in
  let finish r =
    (match r with Error _ -> failed := true | Ok _ -> ());
    decr outstanding;
    if !outstanding = 0 then
      if !failed then k (Error `Lost) else k (Ok out)
  in
  List.iter
    (fun (foff, rseg, soff, xlen) ->
      if foff < off + len && foff + xlen > off then begin
        let lo = Stdlib.max off foff and hi = Stdlib.min (off + len) (foff + xlen) in
        let delta = lo - foff and n = hi - lo in
        incr outstanding;
        if stores then
          Raid.read_segment_flow raid ~seg:rseg ~flow ~k:(fun r ->
              (match (r, out) with
              | Ok (Some segdata), Some buf ->
                  Bytes.blit segdata (soff + delta) buf (lo - off) n
              | (Ok _ | Error _), _ -> ());
              match r with
              | Ok _ -> finish (Ok ())
              | Error `Lost -> finish (Error `Lost))
        else
          Raid.read_extent_flow raid ~seg:rseg ~off:(soff + delta) ~len:n ~flow
            ~k:finish
      end)
    rep.rp_extents;
  finish (Ok ())

(* Serve at the home shard, going through the block cache when one is
   configured: a read whose blocks are all resident skips the disks. *)
let home_read t sv fe ~gfid ~off ~len ~flow ~k =
  match sv.sv_cache with
  | None ->
      t.n_home <- t.n_home + 1;
      Log.read_flow sv.sv_log fe.f_lfid ~off ~len ~flow ~k
  | Some cache ->
      let bs = t.cfg.cache_block_bytes in
      let first = off / bs and last = (off + len - 1) / bs in
      let all_hit = ref true in
      for b = first to last do
        match Cache.access cache ~fid:gfid ~block:b with
        | `Hit -> ()
        | `Miss -> all_hit := false
      done;
      if !all_hit then begin
        t.n_cached <- t.n_cached + 1;
        flow_step t flow "pfs.cache";
        k (Ok (Log.peek sv.sv_log fe.f_lfid ~off ~len))
      end
      else begin
        t.n_home <- t.n_home + 1;
        Log.read_flow sv.sv_log fe.f_lfid ~off ~len ~flow ~k
      end

(* Rotation with load bias: scan the candidate ring starting at the
   file's rotation cursor and take the least-loaded server, ties going
   to the earliest in rotation order.  Pure rotation when equally
   loaded; the bias steers around a backlogged server. *)
let pick_server t fe =
  let candidates = fe.f_home :: List.rev fe.f_replicas in
  let n = List.length candidates in
  let arr = Array.of_list candidates in
  let start = fe.f_rr mod n in
  fe.f_rr <- fe.f_rr + 1;
  let best = ref arr.(start) in
  for j = 1 to n - 1 do
    let cand = arr.((start + j) mod n) in
    if t.servers.(cand).sv_outstanding < t.servers.(!best).sv_outstanding then
      best := cand
  done;
  !best

let read t ?(client = 0) ?(flow = Sim.Trace.no_flow) gfid ~off ~len ~k =
  match Hashtbl.find_opt t.files gfid with
  | None -> k (Error `No_such_file)
  | Some fe ->
      note_read t gfid fe;
      (* Valid replicas only: an entry whose version lags the file's
         was dropped by the invalidation, so membership in f_replicas
         already implies freshness — assert it cheaply. *)
      let sid = pick_server t fe in
      let sv = t.servers.(sid) in
      flow_step t flow "dir.route";
      sv.sv_outstanding <- sv.sv_outstanding + 1;
      let read_started = Sim.Engine.now t.engine in
      t.transport.t_request ~client ~server:sid ~flow ~k:(fun () ->
          let serve_k r =
            t.transport.t_respond ~server:sid ~client ~flow ~len ~k:(fun () ->
                sv.sv_outstanding <- sv.sv_outstanding - 1;
                sv.sv_reads <- sv.sv_reads + 1;
                Sim.Metrics.sample t.m_read_win
                  (Sim.Time.to_us_f
                     (Sim.Time.sub (Sim.Engine.now t.engine) read_started));
                k r)
          in
          if sid = fe.f_home then home_read t sv fe ~gfid ~off ~len ~flow ~k:serve_k
          else
            match Hashtbl.find_opt sv.sv_replicas gfid with
            | Some rep when rep.rp_version = fe.f_version ->
                t.n_replica <- t.n_replica + 1;
                Sim.Metrics.incr t.m_replica_reads;
                replica_read t sv rep ~off ~len ~flow ~k:serve_k
            | Some _ | None ->
                (* The replica vanished between routing and arrival
                   (write raced the request): fall back to the home
                   shard's copy, still on this server's... no — the
                   home shard holds the truth; serve from there. *)
                t.n_home <- t.n_home + 1;
                let home = t.servers.(fe.f_home) in
                Log.read_flow home.sv_log fe.f_lfid ~off ~len ~flow ~k:serve_k)

(* {1 Statistics} *)

let reads_total t = t.n_reads
let reads_home t = t.n_home
let reads_replica t = t.n_replica
let reads_cached t = t.n_cached
let replications_started t = t.n_rep_started
let replications_completed t = t.n_rep_completed
let replications_discarded t = t.n_rep_discarded
let replicas_dropped t = t.n_dropped
let invalidations t = t.n_invalidations
let server_reads t i = t.servers.(i).sv_reads
let server_outstanding t i = t.servers.(i).sv_outstanding
let server_replica_bytes t i = t.servers.(i).sv_replica_bytes
