type error = [ `Lost ]

type t = {
  engine : Sim.Engine.t;
  n_data : int;
  seg_bytes : int;
  chunk : int;
  all_disks : Disk.t array;  (* data disks then parity *)
  store : (int, bytes option array) Hashtbl.t option;
      (* seg -> chunk contents per disk (None = lost/unwritten) *)
  mutable degraded : int;  (* reads served with a disk missing *)
  m_degraded : Sim.Metrics.counter;
  m_retried : Sim.Metrics.counter;
}

let create engine ?(data_disks = 4) ?(disk_params = Disk.default_params)
    ?(store_data = false) ~segment_bytes () =
  if segment_bytes mod data_disks <> 0 then
    invalid_arg "Raid.create: segment size must divide by the data disks";
  let all_disks =
    Array.init (data_disks + 1) (fun i ->
        let name = if i = data_disks then "parity" else "data" ^ string_of_int i in
        Disk.create engine ~params:disk_params ~name ())
  in
  let metrics = Sim.Engine.metrics engine in
  {
    engine;
    n_data = data_disks;
    seg_bytes = segment_bytes;
    chunk = segment_bytes / data_disks;
    all_disks;
    store = (if store_data then Some (Hashtbl.create 256) else None);
    degraded = 0;
    m_degraded =
      Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Pfs
        ~help:"segment reads served with at least one disk missing"
        "raid.degraded_reads";
    m_retried =
      Sim.Metrics.counter metrics ~sub:Sim.Subsystem.Pfs
        ~help:"segment reads retried after a disk failed mid-read"
        "raid.read_retries";
  }

let segment_bytes t = t.seg_bytes
let stores_data t = t.store <> None
let data_disks t = t.n_data
let disks t = Array.to_list t.all_disks

let xor_into dst src =
  for i = 0 to Bytes.length dst - 1 do
    Bytes.set dst i
      (Char.chr (Char.code (Bytes.get dst i) lxor Char.code (Bytes.get src i)))
  done

let parity_of_chunks chunks =
  let p = Bytes.make (Bytes.length chunks.(0)) '\000' in
  Array.iter (fun c -> xor_into p c) chunks;
  p

(* Run [f] on every (disk index, disk) pair and join the completions:
   [k] fires when all have completed, with the count of failures. *)
let fan_out t indices op ~k =
  match indices with
  | [] -> k 0
  | indices ->
  let outstanding = ref (List.length indices) in
  let failures = ref 0 in
  let join = function
    | Ok () -> ()
    | Error `Failed -> incr failures
  in
  List.iter
    (fun i ->
      op i t.all_disks.(i) (fun r ->
          join r;
          decr outstanding;
          if !outstanding = 0 then k !failures))
    indices

let indices n = List.init n Fun.id

(* Record the array-level join of a fan-out as one flow step, at the
   instant the last component completes (= now, when the joined k
   fires). *)
let flow_join t flow =
  if flow >= 0 then begin
    let tr = Sim.Engine.trace t.engine in
    if Sim.Trace.flows_on tr then
      Sim.Trace.flow_step tr
        ~ts:(Sim.Engine.now t.engine)
        ~sub:Sim.Subsystem.Pfs ~cat:"pfs" ~flow "pfs.raid"
  end

let write_segment t ~seg ?data ?(flow = Sim.Trace.no_flow) k =
  (match (data, t.store) with
  | Some bytes, Some store ->
      if Bytes.length bytes <> t.seg_bytes then
        invalid_arg "Raid.write_segment: bad data size";
      let chunks =
        Array.init t.n_data (fun d -> Bytes.sub bytes (d * t.chunk) t.chunk)
      in
      let parity = parity_of_chunks chunks in
      let cells =
        Array.init (t.n_data + 1) (fun i ->
            if i = t.n_data then Some parity else Some chunks.(i))
      in
      (* A failed disk does not record its chunk. *)
      Array.iteri
        (fun i d -> if Disk.failed d then cells.(i) <- None)
        t.all_disks;
      Hashtbl.replace store seg cells
  | Some _, None | None, Some _ | None, None -> ());
  let off = seg * t.chunk in
  fan_out t
    (indices (t.n_data + 1))
    (fun _ d cb -> Disk.write_flow d ~flow ~off ~len:t.chunk ~k:cb)
    ~k:(fun failures ->
      flow_join t flow;
      if failures > 1 then k (Error `Lost) else k (Ok ()))

let reconstruct t store seg cells =
  (* Rebuild at most one missing chunk from the XOR of the others. *)
  let missing = ref [] in
  Array.iteri (fun i c -> if c = None then missing := i :: !missing) cells;
  match !missing with
  | [] -> true
  | [ i ] ->
      let acc = Bytes.make t.chunk '\000' in
      Array.iteri (fun j c -> if j <> i then
        match c with Some b -> xor_into acc b | None -> assert false)
        cells;
      cells.(i) <- Some acc;
      Hashtbl.replace store seg cells;
      true
  | _ :: _ :: _ -> false

let read_segment_flow t ~seg ~flow ~k =
  let off = seg * t.chunk in
  let deliver () =
    match t.store with
    | None -> k (Ok None)
    | Some store -> begin
        match Hashtbl.find_opt store seg with
        | None -> k (Ok None)
        | Some cells ->
            (* Chunks on currently-failed disks are unavailable even
               if once written. *)
            let view = Array.copy cells in
            Array.iteri
              (fun i d -> if Disk.failed d then view.(i) <- None)
              t.all_disks;
            if not (reconstruct t store seg view) then k (Error `Lost)
            else begin
              let out = Bytes.create t.seg_bytes in
              for d = 0 to t.n_data - 1 do
                match view.(d) with
                | Some b -> Bytes.blit b 0 out (d * t.chunk) t.chunk
                | None -> assert false
              done;
              k (Ok (Some out))
            end
      end
  in
  (* A disk that fails *mid-read* answers [Error `Failed] after the
     targets were chosen; as long as n of n+1 chunks survive, the read
     is retried over the remaining healthy disks (parity standing in
     for the lost data chunk) instead of reporting the segment lost. *)
  let rec attempt ~retries_left =
    let healthy_data =
      List.filter
        (fun i -> not (Disk.failed t.all_disks.(i)))
        (indices t.n_data)
    in
    let need_parity = List.length healthy_data < t.n_data in
    let targets =
      if need_parity && not (Disk.failed t.all_disks.(t.n_data)) then
        healthy_data @ [ t.n_data ]
      else healthy_data
    in
    if List.length targets < t.n_data then k (Error `Lost)
    else begin
      if need_parity then begin
        t.degraded <- t.degraded + 1;
        Sim.Metrics.incr t.m_degraded
      end;
      fan_out t targets
        (fun _ d cb -> Disk.read_flow d ~flow ~off ~len:t.chunk ~k:cb)
        ~k:(fun failures ->
          flow_join t flow;
          if failures = 0 then deliver ()
          else if retries_left > 0 then begin
            Sim.Metrics.incr t.m_retried;
            attempt ~retries_left:(retries_left - 1)
          end
          else k (Error `Lost))
    end
  in
  attempt ~retries_left:1

let read_segment t ~seg ~k = read_segment_flow t ~seg ~flow:Sim.Trace.no_flow ~k

let peek_segment t ~seg =
  match t.store with
  | None -> None
  | Some store -> begin
      match Hashtbl.find_opt store seg with
      | None -> None
      | Some cells ->
          let view = Array.copy cells in
          Array.iteri (fun i d -> if Disk.failed d then view.(i) <- None) t.all_disks;
          if not (reconstruct t store seg view) then None
          else begin
            let out = Bytes.create t.seg_bytes in
            let ok = ref true in
            for d = 0 to t.n_data - 1 do
              match view.(d) with
              | Some b -> Bytes.blit b 0 out (d * t.chunk) t.chunk
              | None -> ok := false
            done;
            if !ok then Some out else None
          end
    end

let read_extent_flow t ~seg ~off ~len ~flow ~k =
  if off < 0 || len < 0 || off + len > t.seg_bytes then
    invalid_arg "Raid.read_extent: out of segment";
  let first = off / t.chunk and last = (off + len - 1) / t.chunk in
  let touched =
    List.filter (fun d -> d >= first && d <= last) (indices t.n_data)
  in
  let byte_count d =
    let lo = Stdlib.max off (d * t.chunk)
    and hi = Stdlib.min (off + len) ((d + 1) * t.chunk) in
    hi - lo
  in
  (* Only the first touched disk starts inside its chunk; every later
     disk reads from the start of the chunk. *)
  let disk_off d = Stdlib.max off (d * t.chunk) - (d * t.chunk) in
  fan_out t touched
    (fun d disk cb ->
      Disk.read_flow disk ~flow
        ~off:((seg * t.chunk) + disk_off d)
        ~len:(byte_count d) ~k:cb)
    ~k:(fun failures ->
      flow_join t flow;
      if failures > 0 then k (Error `Lost) else k (Ok ()))

let read_extent t ~seg ~off ~len ~k =
  read_extent_flow t ~seg ~off ~len ~flow:Sim.Trace.no_flow ~k

let fail_disk t i = Disk.fail t.all_disks.(i)
let repair_disk t i = Disk.repair t.all_disks.(i)
let fail_disk_at t i ~at = Disk.fail_at t.all_disks.(i) ~at
let fail_disk_for t i ~at ~duration = Disk.fail_for t.all_disks.(i) ~at ~duration
let degraded_reads t = t.degraded

let failed_disks t =
  List.filter (fun i -> Disk.failed t.all_disks.(i)) (indices (t.n_data + 1))

let total_bytes_written t =
  Array.fold_left (fun acc d -> acc + Disk.bytes_written d) 0 t.all_disks

let total_bytes_read t =
  Array.fold_left (fun acc d -> acc + Disk.bytes_read d) 0 t.all_disks

let reset_stats t = Array.iter Disk.reset_stats t.all_disks
