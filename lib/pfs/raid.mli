(** Segment-addressed RAID: each megabyte segment is striped across
    four data disks, with a fifth parity disk allowing recovery from
    the failure of any single component.

    Each segment is divided into four contiguous chunks, one per data
    disk, plus an XOR parity chunk; the five writes (or four reads)
    proceed in parallel, which is what multiplies the per-disk rate by
    four.  With [store_data] the array really keeps the bytes and
    reconstructs them through the parity computation, so tests can
    verify recovery bit-for-bit; without it the array is timing-only,
    letting experiments address terabytes. *)

type t

type error = [ `Lost ]
(** More than one component failed: data is unrecoverable. *)

val create :
  Sim.Engine.t ->
  ?data_disks:int ->
  ?disk_params:Disk.params ->
  ?store_data:bool ->
  segment_bytes:int ->
  unit ->
  t
(** Defaults: 4 data disks + 1 parity, {!Disk.default_params},
    [store_data] = false. *)

val segment_bytes : t -> int

val stores_data : t -> bool
val data_disks : t -> int
val disks : t -> Disk.t list
(** Data disks first, parity disk last. *)

val write_segment :
  t ->
  seg:int ->
  ?data:bytes ->
  ?flow:int ->
  ((unit, error) result -> unit) ->
  unit
(** Write a whole segment.  [data] (exactly [segment_bytes] long) is
    retained only when the array stores data.  When [flow] names a
    causal flow, each component disk records a ["pfs.disk"] flow step
    and the join records ["pfs.raid"] (see {!Sim.Trace}). *)

val read_segment :
  t -> seg:int -> k:((bytes option, error) result -> unit) -> unit
(** Read a whole segment.  Returns the stored bytes when available —
    reconstructing a failed disk's chunk from parity if needed. *)

val read_segment_flow :
  t ->
  seg:int ->
  flow:int ->
  k:((bytes option, error) result -> unit) ->
  unit
(** Like {!read_segment}, carrying a causal flow id
    ({!Sim.Trace.no_flow} for none) into the component disks. *)

val peek_segment : t -> seg:int -> bytes option
(** The stored contents of a segment, without any disk activity or
    simulated time — the buffer-cache hit path.  [None] when the array
    is timing-only or the segment is unreadable. *)

val read_extent :
  t -> seg:int -> off:int -> len:int -> k:((unit, error) result -> unit) ->
  unit
(** Timing-only partial read touching just the disks whose chunks
    intersect [off, off+len). *)

val read_extent_flow :
  t ->
  seg:int ->
  off:int ->
  len:int ->
  flow:int ->
  k:((unit, error) result -> unit) ->
  unit
(** Like {!read_extent}, carrying a causal flow id. *)

val fail_disk : t -> int -> unit
(** 0 .. data_disks-1 are data disks; [data_disks] is the parity disk. *)

val repair_disk : t -> int -> unit
(** Bring the disk back (empty); stored chunks are rebuilt from the
    surviving disks on the next read of each segment. *)

val fail_disk_at : t -> int -> at:Sim.Time.t -> unit
(** Schedule a permanent failure of the disk at a simulated instant
    (clamped to now).  Reads in flight complete with a failure, which
    {!read_segment} survives by retrying over the remaining disks. *)

val fail_disk_for : t -> int -> at:Sim.Time.t -> duration:Sim.Time.t -> unit
(** Schedule a transient failure window. *)

val failed_disks : t -> int list

(** {1 Statistics} *)

val degraded_reads : t -> int
(** Segment reads served with at least one disk missing (parity
    standing in for the lost chunk). *)

val total_bytes_written : t -> int
val total_bytes_read : t -> int
val reset_stats : t -> unit
