type params = {
  transfer_bps : int;
  min_seek : Sim.Time.t;
  max_seek : Sim.Time.t;
  half_rotation : Sim.Time.t;
  capacity : int;
}

let default_params =
  {
    transfer_bps = 48_000_000;  (* 6 MB/s media rate *)
    min_seek = Sim.Time.ms 2;
    max_seek = Sim.Time.ms 12;
    half_rotation = Sim.Time.us 4170;  (* 7200 rpm *)
    capacity = 2_000_000_000;
  }

type error = [ `Failed ]

type t = {
  engine : Sim.Engine.t;
  disk_name : string;
  p : params;
  mutable head : int;  (* byte position after the last operation *)
  mutable free_at : Sim.Time.t;  (* when the mechanism goes idle *)
  mutable is_failed : bool;
  mutable n_reads : int;
  mutable n_writes : int;
  mutable rbytes : int;
  mutable wbytes : int;
  mutable busy : Sim.Time.t;
  mutable seeking : Sim.Time.t;
}

let create engine ?(params = default_params) ~name () =
  {
    engine;
    disk_name = name;
    p = params;
    head = 0;
    free_at = Sim.Time.zero;
    is_failed = false;
    n_reads = 0;
    n_writes = 0;
    rbytes = 0;
    wbytes = 0;
    busy = Sim.Time.zero;
    seeking = Sim.Time.zero;
  }

let name t = t.disk_name
let params t = t.p

let transfer_time t len =
  Sim.Time.of_sec_f (Float.of_int (len * 8) /. Float.of_int t.p.transfer_bps)

(* Seek from the current head position: zero when perfectly
   sequential, otherwise min_seek plus a square-root profile of the
   distance (arm acceleration), plus half a rotation. *)
let positioning_time t ~off =
  if off = t.head then Sim.Time.zero
  else begin
    let dist = Float.of_int (abs (off - t.head)) in
    let frac = sqrt (dist /. Float.of_int t.p.capacity) in
    let spread =
      Sim.Time.to_sec_f (Sim.Time.sub t.p.max_seek t.p.min_seek) *. frac
    in
    Sim.Time.add
      (Sim.Time.add t.p.min_seek (Sim.Time.of_sec_f spread))
      t.p.half_rotation
  end

let submit t ~flow ~off ~len ~k =
  if t.is_failed then k (Error `Failed)
  else begin
    let now = Sim.Engine.now t.engine in
    let start = Sim.Time.max now t.free_at in
    let seek = positioning_time t ~off in
    let xfer = transfer_time t len in
    let finish = Sim.Time.add (Sim.Time.add start seek) xfer in
    t.free_at <- finish;
    t.head <- off + len;
    t.busy <- Sim.Time.add t.busy (Sim.Time.add seek xfer);
    t.seeking <- Sim.Time.add t.seeking seek;
    ignore
      (Sim.Engine.schedule_at t.engine ~at:finish (fun () ->
           (if flow >= 0 then
              let tr = Sim.Engine.trace t.engine in
              if Sim.Trace.flows_on tr then
                Sim.Trace.flow_step tr ~ts:finish ~sub:Sim.Subsystem.Pfs
                  ~cat:"pfs"
                  ~args:[ ("disk", Sim.Trace.Str t.disk_name) ]
                  ~flow "pfs.disk");
           if t.is_failed then k (Error `Failed) else k (Ok ())))
  end

let read_flow t ~flow ~off ~len ~k =
  t.n_reads <- t.n_reads + 1;
  t.rbytes <- t.rbytes + len;
  submit t ~flow ~off ~len ~k

let write_flow t ~flow ~off ~len ~k =
  t.n_writes <- t.n_writes + 1;
  t.wbytes <- t.wbytes + len;
  submit t ~flow ~off ~len ~k

let read t ~off ~len ~k = read_flow t ~flow:Sim.Trace.no_flow ~off ~len ~k
let write t ~off ~len ~k = write_flow t ~flow:Sim.Trace.no_flow ~off ~len ~k

let fail t = t.is_failed <- true
let repair t = t.is_failed <- false
let failed t = t.is_failed

let fail_at t ~at =
  ignore
    (Sim.Engine.schedule_at t.engine
       ~at:(Sim.Time.max at (Sim.Engine.now t.engine))
       (fun () -> fail t))

let fail_for t ~at ~duration =
  let at = Sim.Time.max at (Sim.Engine.now t.engine) in
  ignore (Sim.Engine.schedule_at t.engine ~at (fun () -> fail t));
  ignore
    (Sim.Engine.schedule_at t.engine ~at:(Sim.Time.add at duration) (fun () ->
         repair t))

let head t = t.head
let reads t = t.n_reads
let writes t = t.n_writes
let bytes_read t = t.rbytes
let bytes_written t = t.wbytes
let busy_time t = t.busy
let seek_time t = t.seeking

let reset_stats t =
  t.n_reads <- 0;
  t.n_writes <- 0;
  t.rbytes <- 0;
  t.wbytes <- 0;
  t.busy <- Sim.Time.zero;
  t.seeking <- Sim.Time.zero
