(** Discrete-event simulation engine.

    The engine owns the simulated clock and a priority queue of pending
    events.  Callbacks run at their scheduled instant; two events at the
    same instant run in scheduling order, so runs are deterministic.

    Event bookkeeping lives in a preallocated int arena and the clock
    is a native [int] of nanoseconds internally, so the steady-state
    schedule/fire path allocates nothing on the minor heap — the
    property [bench/main.ml]'s [engine.steady_state] benchmark asserts
    with a [Gc.minor_words] delta.

    A callback may schedule further events and cancel pending ones, but
    must not call {!run} reentrantly. *)

type t

type event_id
(** Handle for cancelling a scheduled event: an immediate packing the
    event's arena slot and a generation counter.  The generation bumps
    when the slot is recycled, so a stale handle kept across fire and
    reuse fails {!cancel} harmlessly — no lookup tables sit on the
    event hot path, and handles never keep callbacks alive. *)

val create :
  ?queue:[ `Auto | `Heap | `Calendar ] ->
  ?trace:Trace.t ->
  ?metrics:Metrics.t ->
  unit ->
  t
(** [queue] selects the priority queue implementation: [`Heap] (4-ary
    implicit heap — the reference structure, best at modest
    populations), [`Calendar] (calendar queue, O(1) amortized — wins
    for massive-N regimes), or [`Auto] (default: start on the heap,
    migrate once to a calendar queue if the live population crosses
    32768).  Both extract the exact [(time, seq)] minimum, so results
    are byte-identical whichever is picked.

    [trace] and [metrics] default to the process-wide {!Trace.default}
    and {!Metrics.default}; pass fresh instances for isolated runs
    (tests).  The engine registers its own metrics
    ([sim/engine.events_fired], [sim/engine.events_cancelled],
    [sim/engine.queue_depth]) into the registry.  The queue-depth gauge
    is sampled every few hundred schedule/cancel/fire transitions and
    refreshed at the end of every {!run}, not written per event. *)

val now : t -> Time.t
(** Current simulated time. *)

val trace : t -> Trace.t
(** The trace sink components attached to this engine record into. *)

val metrics : t -> Metrics.t
(** The metrics registry components attached to this engine use. *)

val schedule_at : ?daemon:bool -> t -> at:Time.t -> (unit -> unit) -> event_id
(** Schedule a callback at an absolute time.  Raises [Invalid_argument]
    if [at] is in the past.  A [daemon] event (default false) fires
    normally but does not keep an unbounded {!run} alive — use it for
    periodic background services. *)

val schedule : ?daemon:bool -> t -> delay:Time.t -> (unit -> unit) -> event_id
(** Schedule a callback [delay] from now.  A zero delay runs after all
    callbacks currently executing, still at the same instant. *)

val cancel : t -> event_id -> bool
(** Cancel a pending event.  Returns [true] when the cancellation took
    effect; cancelling an already-fired or already-cancelled event — or
    a stale handle whose arena slot has been recycled — is a no-op that
    returns [false] and leaves {!pending}, the [engine.queue_depth]
    gauge and the cancellation counter untouched. *)

val pending : t -> int
(** Number of scheduled, uncancelled events. *)

val pending_user : t -> int
(** Like {!pending}, counting only non-daemon events. *)

val next_at : t -> Time.t option
(** Instant of the earliest entry still in the queue, or [None] when
    the queue is empty.  Cancelled-but-undelivered events are included,
    so this is a lower bound on the next instant at which anything can
    actually fire — exactly what a conservative parallel runner needs
    (see {!Shard}). *)

val next_at_ns : t -> int
(** {!next_at} in integer nanoseconds, [max_int] when the queue is
    empty.  Never allocates — {!Shard}'s epoch loop publishes this
    every epoch for every shard. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Run events in timestamp order until the queue empties, simulated
    time would pass [until], or [max_events] callbacks have run.
    When stopped by [until], the clock is advanced to exactly [until].
    Without [until], the run also stops once only daemon events
    remain. *)

val run_until_ns : t -> int -> unit
(** [run ~until] with the bound already in integer nanoseconds and no
    event budget.  Allocation-free entry point for {!Shard}'s
    per-epoch calls. *)

val step : t -> bool
(** Run a single event.  Returns [false] when the queue is empty.
    Like {!run}'s inner loop, the queue-depth gauge is sampled, not
    flushed per call — read it after a {!run}, or via {!pending}, for
    an exact value. *)

val flush_gauges : t -> unit
(** Write every sampled gauge (currently the queue-depth gauge) with
    its exact current value.  {!run} does this when it returns;
    {!Shard} calls it at every epoch barrier so the every-256-
    transitions sampling in {!step}'s loop can never leave a stale
    gauge visible across a shard boundary. *)

val every :
  ?daemon:bool -> t -> period:Time.t -> ?start:Time.t -> (unit -> bool) -> unit
(** [every t ~period f] calls [f] periodically (first call at [start],
    default one period from now) for as long as [f] returns [true].
    Raises [Invalid_argument] when [period <= 0] — a non-positive
    period would reschedule at the same instant forever and livelock
    the run. *)
