(* Calendar queue (Brown 1988) over an int-entry pool.

   The engine's 4-ary heap costs O(log n) per operation, which at the
   city-scale regime (~1e6 live events) is ~20 levels of cache misses
   per push/pop.  A calendar queue buckets events by time instead: with
   bucket width near the mean inter-event gap and about one bucket per
   live event, push is O(1) and pop-min is O(1) amortized — extract
   scans forward from the last minimum's bucket and almost always finds
   the next minimum within a step or two.

   Layout: entries live in one interleaved [int array] pool — key,
   sequence, value and next-link are the four consecutive words at the
   entry's base offset, so touching an entry costs one cache line, not
   four scattered ones (at 1e6 live events the pool is ~32 MB and every
   access is a DRAM miss; the interleaving is worth hundreds of ns per
   event).  Entries are recycled through a free list threaded over the
   link word, so a steady-state push/pop touches no allocator at all —
   the property the engine's GC-free hot loop is built on.  Buckets are
   singly-linked chains through the pool ([bhead] holds each bucket's
   head entry).  Bucket index is [(key / width) land mask]; a bucket
   therefore mixes entries from different "laps" (days), and scans
   filter by [key < (day + 1) * width] to consider only the current
   day's entries.

   Determinism: extraction picks the exact minimum under the total
   order [(key, seq)], identical to the heap's order, so simulations
   are byte-identical whichever structure backs the engine — the
   differential property test in test/test_sim.ml enforces this.
   Chain order inside a bucket never affects which entry is extracted
   (scans fold whole chains under the same total order), so neither
   relinking on resize nor the lazy chain sort below can perturb
   results.

   Resize policy: geometry is recomputed when the population doubles
   past [2 * nbuckets] or collapses under [nbuckets / 8].  The new
   bucket count is the next power of two >= len and the new width is
   the mean key gap over the current contents, [(kmax - kmin) / len]
   — both pure functions of the queue contents, so resizes replay
   identically across runs.  Entries never move on resize; only the
   head array is rebuilt.

   Degenerate case: a flood of same-key (or same-day) events all lands
   in one bucket, and a naive calendar queue pays O(flood) per pop to
   re-find the FIFO-next entry.  Long chains are therefore sorted
   lazily: when a scan meets a dirty chain longer than
   [sort_threshold], it sorts the chain by (key, seq) once — after
   which the head IS the bucket minimum, pops peek it in O(1), and the
   chain stays sorted until a push lands out of order.  Draining a
   flood of F ties costs one O(F log F) sort and then O(1) per pop
   instead of O(F) per pop.  Short chains (the dispersed common case)
   are scanned directly and never pay the sort. *)

type t = {
  mutable width : int; (* ns per bucket, >= 1 *)
  mutable mask : int; (* nbuckets - 1; nbuckets is a power of two *)
  mutable bhead : int array; (* per-bucket head entry, -1 when empty *)
  (* Per-bucket metadata word: [(chain length lsl 1) lor sorted].  The
     sorted bit means the chain is (key, seq)-ascending, so its head is
     its minimum; any out-of-order prepend clears it.  One word instead
     of two arrays keeps bucket upkeep to a single cache line. *)
  mutable bmeta : int array;
  (* Entry pool: entry [e] is the four words [epool.(e) = key;
     epool.(e+1) = seq; epool.(e+2) = value; epool.(e+3) = next].
     Entry ids are base offsets (multiples of 4); -1 ends a chain. *)
  mutable epool : int array;
  mutable efree : int; (* free-list head, -1 when exhausted *)
  mutable ecap : int; (* entries, not words *)
  mutable len : int;
  (* Search start ("front"): <= key/width of every live entry except
     possibly the cached minimum, which may sit below it.  Scans only
     run once the cached minimum has been consumed, so the exception
     can never be missed. *)
  mutable cur_div : int;
  (* Cached minimum (valid when cmin_e >= 0): entry, its chain
     predecessor (-1 = bucket head) and its bucket. *)
  mutable cmin_e : int;
  mutable cmin_p : int;
  mutable cmin_b : int;
  mutable sbuf : int array; (* scratch for sort_bucket, grows amortized *)
  mutable grow_at : int;
  mutable shrink_at : int;
}

let initial_buckets = 16

(* 1.024us — an arbitrary seed; the first resize (at 32 entries)
   replaces it with the measured mean gap. *)
let initial_width = 1024

(* Keys are simulated nanoseconds.  The day arithmetic computes
   [(key / width + 1) * width <= key + width], so capping keys at 2^61
   and widths at 2^40 keeps every intermediate well inside a 63-bit
   int.  2^61 ns is ~73 years of simulated time. *)
let max_key = 1 lsl 61
let max_width = 1 lsl 40

let create () =
  {
    width = initial_width;
    mask = initial_buckets - 1;
    bhead = Array.make initial_buckets (-1);
    bmeta = Array.make initial_buckets 0;
    epool = [||];
    efree = -1;
    ecap = 0;
    len = 0;
    cur_div = 0;
    cmin_e = -1;
    cmin_p = -1;
    cmin_b = 0;
    sbuf = [||];
    grow_at = 2 * initial_buckets;
    shrink_at = 0;
  }

let length t = t.len
let is_empty t = t.len = 0

let grow_pool t =
  let ncap = if t.ecap = 0 then 16 else t.ecap * 2 in
  let npool = Array.make (4 * ncap) 0 in
  Array.blit t.epool 0 npool 0 (4 * t.ecap);
  (* Thread the new slots onto the free list, lowest id first. *)
  for i = ncap - 1 downto t.ecap do
    let e = 4 * i in
    npool.(e + 3) <- t.efree;
    t.efree <- e
  done;
  t.epool <- npool;
  t.ecap <- ncap

(* Walk one bucket chain and fold every entry of the day bounded by
   [hi] into the cached minimum.  Tail-recursive over int arguments so
   the pop path never allocates. *)
let rec scan_bucket t ~hi ~b e p =
  if e >= 0 then begin
    let pool = t.epool in
    let k = pool.(e) in
    (if k < hi then
       let m = t.cmin_e in
       if m < 0 || k < pool.(m) || (k = pool.(m) && pool.(e + 1) < pool.(m + 1))
       then begin
         t.cmin_e <- e;
         t.cmin_p <- p;
         t.cmin_b <- b
       end);
    scan_bucket t ~hi ~b pool.(e + 3) e
  end

(* Fold just the head of a (key, seq)-sorted chain into the cached
   minimum: every deeper entry is strictly larger.  If the head is
   beyond [hi] the whole bucket holds only later days. *)
let scan_sorted t ~hi ~b =
  let e = t.bhead.(b) in
  if e >= 0 then begin
    let pool = t.epool in
    let k = pool.(e) in
    if k < hi then begin
      let m = t.cmin_e in
      if m < 0 || k < pool.(m) || (k = pool.(m) && pool.(e + 1) < pool.(m + 1))
      then begin
        t.cmin_e <- e;
        t.cmin_p <- -1;
        t.cmin_b <- b
      end
    end
  end

(* Dirty chains longer than this are sorted on first scan; below it a
   plain walk is cheaper than maintaining order. *)
let sort_threshold = 32

let[@inline] entry_lt pool a b =
  let ka = pool.(a) and kb = pool.(b) in
  ka < kb || (ka = kb && pool.(a + 1) < pool.(b + 1))

(* Bottom-up merge sort of entry ids by (key, seq), worst-case
   O(n log n).  Bucket chains here are NOT random: the resize relink
   reverses each chain, so a flood bucket arrives as a stack of
   alternately reversed blocks — a pattern a deterministic-pivot
   quicksort degrades to O(n^2) on (a ~100k flood paid seconds for its
   one lazy sort).  Seed runs of [run_width] are built by insertion
   sort, then merged between [buf] and the scratch half of the same
   array; ties cannot occur ((key, seq) pairs are unique). *)
let run_width = 16

(* Merge [buf[s+lo, s+mid)] and [buf[s+mid, s+hi)] into
   [buf[d+lo, d+hi)]: the two halves of one scratch array addressed by
   base offset, so alternating passes swap offsets instead of
   allocating a second array. *)
let merge pool buf ~s ~d lo mid hi =
  let i = ref lo and j = ref mid and k = ref lo in
  while !i < mid && !j < hi do
    if entry_lt pool buf.(s + !j) buf.(s + !i) then begin
      buf.(d + !k) <- buf.(s + !j);
      incr j
    end
    else begin
      buf.(d + !k) <- buf.(s + !i);
      incr i
    end;
    incr k
  done;
  while !i < mid do
    buf.(d + !k) <- buf.(s + !i);
    incr i;
    incr k
  done;
  while !j < hi do
    buf.(d + !k) <- buf.(s + !j);
    incr j;
    incr k
  done

(* Sort [buf[0, n)], using [buf[n, 2n)] as scratch.  Returns the base
   offset (0 or n) the sorted ids ended up at. *)
let msort pool buf n =
  let lo = ref 0 in
  while !lo < n do
    let hi = Stdlib.min n (!lo + run_width) in
    for i = !lo + 1 to hi - 1 do
      let x = buf.(i) in
      let j = ref (i - 1) in
      while !j >= !lo && entry_lt pool x buf.(!j) do
        buf.(!j + 1) <- buf.(!j);
        decr j
      done;
      buf.(!j + 1) <- x
    done;
    lo := !lo + run_width
  done;
  let s = ref 0 and d = ref n and w = ref run_width in
  while !w < n do
    let lo = ref 0 in
    while !lo < n do
      let mid = Stdlib.min n (!lo + !w) in
      let hi = Stdlib.min n (!lo + (2 * !w)) in
      merge pool buf ~s:!s ~d:!d !lo mid hi;
      lo := hi
    done;
    let o = !s in
    s := !d;
    d := o;
    w := 2 * !w
  done;
  !s

let sort_bucket t b =
  let n = t.bmeta.(b) lsr 1 in
  (* [sbuf] holds the chain ids in its first half and merge scratch in
     its second; both halves must fit. *)
  (if Array.length t.sbuf < 2 * n then begin
     let cap = ref (Stdlib.max 128 (2 * Array.length t.sbuf)) in
     while !cap < 2 * n do
       cap := !cap * 2
     done;
     t.sbuf <- Array.make !cap 0
   end);
  let pool = t.epool in
  let buf = t.sbuf in
  let e = ref t.bhead.(b) and i = ref 0 in
  while !e >= 0 do
    buf.(!i) <- !e;
    incr i;
    e := pool.(!e + 3)
  done;
  let o = msort pool buf n in
  t.bhead.(b) <- buf.(o);
  for j = 0 to n - 2 do
    pool.(buf.(o + j) + 3) <- buf.(o + j + 1)
  done;
  pool.(buf.(o + n - 1) + 3) <- -1;
  t.bmeta.(b) <- (n lsl 1) lor 1

let visit_bucket t ~hi ~b =
  let meta = t.bmeta.(b) in
  if meta land 1 = 1 then scan_sorted t ~hi ~b
  else if meta lsr 1 > sort_threshold then begin
    sort_bucket t b;
    scan_sorted t ~hi ~b
  end
  else scan_bucket t ~hi ~b t.bhead.(b) (-1)

(* One lap of buckets starting at day [d]: the first bucket holding an
   entry of its own day holds the minimum (every residue is visited
   exactly once per lap, so a candidate with [key < (d + 1) * width]
   has [key / width = d] exactly). *)
let rec lap_scan t d lap nb =
  if lap < nb && t.cmin_e < 0 then begin
    let b = d land t.mask in
    visit_bucket t ~hi:((d + 1) * t.width) ~b;
    if t.cmin_e < 0 then lap_scan t (d + 1) (lap + 1) nb
  end

let rec global_scan t b nb =
  if b < nb then begin
    visit_bucket t ~hi:max_int ~b;
    global_scan t (b + 1) nb
  end

let find_min t =
  if t.cmin_e < 0 then begin
    let nb = t.mask + 1 in
    lap_scan t t.cur_div 0 nb;
    if t.cmin_e >= 0 then t.cur_div <- t.epool.(t.cmin_e) / t.width
    else begin
      (* Every live entry lies beyond one full lap from [cur_div]
         (a sparse far-future population): find the minimum directly
         and jump the search start to it. *)
      global_scan t 0 nb;
      t.cur_div <- t.epool.(t.cmin_e) / t.width
    end
  end

let rec min_over_chain pool e acc =
  if e < 0 then acc
  else min_over_chain pool pool.(e + 3) (Stdlib.min acc pool.(e))

let rec max_over_chain pool e acc =
  if e < 0 then acc
  else max_over_chain pool pool.(e + 3) (Stdlib.max acc pool.(e))

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go initial_buckets

(* Recompute geometry from the live population and relink every entry.
   O(len + nbuckets), amortized against the doubling/shrinking that
   triggered it.  Entries stay where they are in the pool; only chain
   links and the head array change. *)
let resize t =
  let pool = t.epool in
  let old_heads = t.bhead in
  let nb = next_pow2 t.len in
  let width =
    if t.len <= 1 then initial_width
    else begin
      let kmin =
        Array.fold_left (fun acc h -> min_over_chain pool h acc) max_int
          old_heads
      in
      let kmax =
        Array.fold_left (fun acc h -> max_over_chain pool h acc) 0 old_heads
      in
      Stdlib.max 1 (Stdlib.min max_width (((kmax - kmin) / t.len) + 1))
    end
  in
  let heads = Array.make nb (-1) in
  let metas = Array.make nb 0 in
  let mask = nb - 1 in
  Array.iter
    (fun h ->
      let e = ref h in
      while !e >= 0 do
        let next = pool.(!e + 3) in
        let b = pool.(!e) / width land mask in
        pool.(!e + 3) <- heads.(b);
        heads.(b) <- !e;
        metas.(b) <- metas.(b) + 2;
        e := next
      done)
    old_heads;
  (* Singleton chains are trivially sorted. *)
  for b = 0 to nb - 1 do
    if metas.(b) = 2 then metas.(b) <- 3
  done;
  t.bhead <- heads;
  t.bmeta <- metas;
  t.mask <- mask;
  t.width <- width;
  t.cmin_e <- -1;
  t.cur_div <- 0;
  t.grow_at <- 2 * nb;
  t.shrink_at <- (if nb <= initial_buckets then 0 else nb / 8);
  if t.len > 0 then begin
    find_min t;
    t.cur_div <- t.epool.(t.cmin_e) / t.width
  end

let push_ns t ~key ~seq v =
  if key < 0 || key > max_key then
    invalid_arg "Calendar.push_ns: key out of range";
  if t.len >= t.grow_at then resize t;
  (if t.efree < 0 then grow_pool t);
  let pool = t.epool in
  let e = t.efree in
  t.efree <- pool.(e + 3);
  pool.(e) <- key;
  pool.(e + 1) <- seq;
  pool.(e + 2) <- v;
  let d = key / t.width in
  let b = d land t.mask in
  let h0 = t.bhead.(b) in
  pool.(e + 3) <- h0;
  t.bhead.(b) <- e;
  (* A prepend keeps the chain sorted only when it becomes the new
     minimum of the chain; same-key prepends break FIFO order because
     the newcomer has the larger seq. *)
  (let meta = t.bmeta.(b) in
   if h0 < 0 then t.bmeta.(b) <- 3
   else if key >= pool.(h0) then t.bmeta.(b) <- (meta lor 1) + 1
   else t.bmeta.(b) <- meta + 2);
  let m = t.cmin_e in
  (if t.len = 0 then begin
     t.cur_div <- d;
     t.cmin_e <- e;
     t.cmin_p <- -1;
     t.cmin_b <- b
   end
   else if d < t.cur_div then begin
     (* The new entry lies strictly below every key covered by
        [cur_div], so it is the global minimum -- unless the cached
        minimum is itself a below-front exception.  Keeping [cur_div]
        at the front (rather than dragging it down to [d]) is what
        keeps pop cost O(1): otherwise each transient early entry
        would force the next scan to re-walk the empty low range. *)
     if m >= 0 && pool.(m) < t.cur_div * t.width then begin
       if key < pool.(m) || (key = pool.(m) && seq < pool.(m + 1)) then begin
         (* The old exception loses; re-cover it by lowering the front. *)
         t.cur_div <- pool.(m) / t.width;
         t.cmin_e <- e;
         t.cmin_p <- -1;
         t.cmin_b <- b
       end
       else begin
         (* New entry loses; re-cover it by lowering the front.  It
            was still prepended, so it may have dethroned the cached
            minimum as head of the same bucket. *)
         t.cur_div <- d;
         if b = t.cmin_b && t.cmin_p < 0 then t.cmin_p <- e
       end
     end
     else begin
       t.cmin_e <- e;
       t.cmin_p <- -1;
       t.cmin_b <- b
     end
   end
   else if m >= 0 then begin
     if key < pool.(m) || (key = pool.(m) && seq < pool.(m + 1)) then begin
       (* The new entry is the new minimum; it is its bucket's head. *)
       t.cmin_e <- e;
       t.cmin_p <- -1;
       t.cmin_b <- b
     end
     else if b = t.cmin_b && t.cmin_p < 0 then
       (* Prepending dethroned the cached minimum as bucket head. *)
       t.cmin_p <- e
   end);
  t.len <- t.len + 1

(* The sorted bit survives a pop: the cached minimum is either its
   bucket's head (head removal preserves order) or sits mid-chain in a
   bucket some push already dirtied. *)
let pop_min t =
  if t.len = 0 then invalid_arg "Calendar.pop_min: empty";
  find_min t;
  let pool = t.epool in
  let e = t.cmin_e and p = t.cmin_p and b = t.cmin_b in
  (* Only ever move the front forward: if the popped entry was a
     below-front exception, [cur_div] still bounds the remainder. *)
  (let d = pool.(e) / t.width in
   if d > t.cur_div then t.cur_div <- d);
  if p < 0 then t.bhead.(b) <- pool.(e + 3) else pool.(p + 3) <- pool.(e + 3);
  t.bmeta.(b) <- t.bmeta.(b) - 2;
  let v = pool.(e + 2) in
  pool.(e + 3) <- t.efree;
  t.efree <- e;
  t.len <- t.len - 1;
  t.cmin_e <- -1;
  if t.len < t.shrink_at then resize t;
  v

let min_key_ns t =
  if t.len = 0 then max_int
  else begin
    find_min t;
    t.epool.(t.cmin_e)
  end

let min_seq_ns t =
  if t.len = 0 then max_int
  else begin
    find_min t;
    t.epool.(t.cmin_e + 1)
  end

let pop_ns t =
  if t.len = 0 then None
  else begin
    find_min t;
    let k = t.epool.(t.cmin_e) and s = t.epool.(t.cmin_e + 1) in
    let v = pop_min t in
    Some (k, s, v)
  end

let clear t =
  t.width <- initial_width;
  t.mask <- initial_buckets - 1;
  t.bhead <- Array.make initial_buckets (-1);
  t.bmeta <- Array.make initial_buckets 0;
  t.epool <- [||];
  t.efree <- -1;
  t.ecap <- 0;
  t.len <- 0;
  t.cur_div <- 0;
  t.cmin_e <- -1;
  t.cmin_p <- -1;
  t.cmin_b <- 0;
  t.sbuf <- [||];
  t.grow_at <- 2 * initial_buckets;
  t.shrink_at <- 0
