(** 4-ary implicit min-heap keyed by [(int64, int)].

    The primary key is a timestamp; the secondary key is an insertion
    sequence number so that events scheduled for the same instant pop in
    FIFO order, which keeps simulations deterministic.

    Keys and sequence numbers are stored in parallel arrays of
    immediates (no per-entry boxing), and sift operations move elements
    through a hole instead of swapping, so a push or pop touches one
    cache line per level of a 4-ary tree.  Keys must fit in a native
    [int] (63 bits — ~146 years of simulated nanoseconds, the same
    assumption {!Time.to_ns} makes); {!push} raises [Invalid_argument]
    otherwise. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> key:int64 -> seq:int -> 'a -> unit
(** [push h ~key ~seq v] inserts [v].  Raises [Invalid_argument] if
    [key] does not round-trip through a native [int]. *)

val pop : 'a t -> (int64 * int * 'a) option
(** Removes and returns the minimum element, or [None] if empty.  The
    vacated slot is cleared so popped values are not retained. *)

val peek : 'a t -> (int64 * int * 'a) option
(** Returns the minimum element without removing it. *)

(** {2 Allocation-free operations}

    The engine hot loop uses these: keys stay native [int]s end to end
    and extraction returns only the payload, so a push/pop pair over an
    immediate payload (the engine stores arena slot indexes) touches no
    minor heap.  They mirror {!Calendar}'s interface, which is what
    lets the differential property test drive both structures through
    one functor. *)

val push_ns : 'a t -> key:int -> seq:int -> 'a -> unit
(** Like {!push} with the key already a native [int] (nanoseconds). *)

val min_key_ns : 'a t -> int
(** Key of the minimum element, or [max_int] when empty. *)

val min_seq_ns : 'a t -> int
(** Sequence number of the minimum element, or [max_int] when empty. *)

val pop_min : 'a t -> 'a
(** Removes the minimum element and returns its value (read the key
    first with {!min_key_ns}).  Raises [Invalid_argument] when
    empty. *)

val clear : 'a t -> unit
