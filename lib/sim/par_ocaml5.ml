(* OCaml 5 implementation of the Par interface: real domains and a
   sense-reversing barrier.  Selected by a rule in lib/sim/dune; the
   4.14 build gets par_ocaml4.ml instead. *)

exception Barrier_poisoned

let available = true
let recommended_workers () = Domain.recommended_domain_count ()

(* Classic phase-counting barrier.  [poisoned] releases blocked waiters
   when a sibling worker dies, so a crash surfaces as an exception on
   every domain instead of a deadlock. *)
type barrier = {
  m : Mutex.t;
  c : Condition.t;
  parties : int;
  mutable waiting : int;
  mutable phase : int;
  mutable poisoned : bool;
}

let barrier_create parties =
  {
    m = Mutex.create ();
    c = Condition.create ();
    parties;
    waiting = 0;
    phase = 0;
    poisoned = false;
  }

let barrier_wait b =
  Mutex.lock b.m;
  if b.poisoned then begin
    Mutex.unlock b.m;
    raise Barrier_poisoned
  end;
  let ph = b.phase in
  b.waiting <- b.waiting + 1;
  if b.waiting = b.parties then begin
    b.waiting <- 0;
    b.phase <- ph + 1;
    Condition.broadcast b.c;
    Mutex.unlock b.m
  end
  else begin
    while b.phase = ph && not b.poisoned do
      Condition.wait b.c b.m
    done;
    let p = b.poisoned in
    Mutex.unlock b.m;
    if p then raise Barrier_poisoned
  end

let barrier_poison b =
  Mutex.lock b.m;
  b.poisoned <- true;
  Condition.broadcast b.c;
  Mutex.unlock b.m

let run ~workers f =
  if workers < 1 then invalid_arg "Par.run: workers < 1";
  if workers = 1 then f ~worker:0 ~sync:(fun () -> ())
  else begin
    let b = barrier_create workers in
    let sync () = barrier_wait b in
    let guarded worker () =
      try
        f ~worker ~sync;
        None
      with e ->
        barrier_poison b;
        Some (worker, e)
    in
    let doms =
      List.init (workers - 1) (fun i -> Domain.spawn (guarded (i + 1)))
    in
    let own = guarded 0 () in
    let others = List.map Domain.join doms in
    (* Re-raise deterministically: the root cause from the lowest worker
       index, preferring real exceptions over poisoned-barrier fallout. *)
    let failures =
      List.sort
        (fun (a, _) (b, _) -> compare a b)
        (List.filter_map Fun.id (own :: others))
    in
    let root =
      match List.filter (fun (_, e) -> e <> Barrier_poisoned) failures with
      | f :: _ -> Some f
      | [] -> ( match failures with f :: _ -> Some f | [] -> None)
    in
    match root with Some (_, e) -> raise e | None -> ()
  end

let map ~workers tasks =
  let n = Array.length tasks in
  let workers = Stdlib.max 1 (Stdlib.min workers (Stdlib.max 1 n)) in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    run ~workers (fun ~worker ~sync:_ ->
        let i = ref worker in
        while !i < n do
          (try results.(!i) <- Some (tasks.(!i) ())
           with e -> errors.(!i) <- Some e);
          i := !i + workers
        done);
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map
      (function Some r -> r | None -> assert false (* every slot filled *))
      results
  end
