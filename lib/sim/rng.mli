(** Deterministic pseudo-random numbers (SplitMix64).

    Every stochastic component of the simulation draws from an explicit
    generator so that runs are reproducible from a seed, and independent
    subsystems can be given independent streams ([split]). *)

type t

val create : ?seed:int64 -> unit -> t
(** Fresh generator.  The default seed is a fixed constant, so two
    generators created without a seed produce identical streams. *)

val split : t -> t
(** A new generator whose stream is independent of the parent's. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be > 0. *)

val bool : t -> bool

val uniform : t -> lo:float -> hi:float -> float

val exponential : t -> mean:float -> float
(** Exponentially distributed, with the given mean. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian via Box–Muller. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [exp] of a normal draw; [mu]/[sigma] are the underlying normal's. *)

val pareto : t -> shape:float -> scale:float -> float

val zipf : t -> n:int -> s:float -> int
(** Zipf-distributed rank in [\[1, n\]] with exponent [s], by inversion
    on a cached CDF.  A small MRU set of caches keyed on [(n, s)] is
    kept per generator, so draws that interleave a handful of
    distributions — the flash-crowd generator mixes its pre- and
    post-flip popularity laws — stay O(log n) per draw instead of
    rebuilding the O(n) table on every alternation.  The cache never
    changes drawn values. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
