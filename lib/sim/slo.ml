(* Declarative service-level objectives.

   A spec says nothing about *where* its signal comes from — that
   binding (a counter rate, a gauge level, a windowed percentile) is
   supplied when the spec is registered with {!Monitor}.  Keeping the
   spec pure data means the same objective can be evaluated against
   different rigs, printed in reports, and compared across runs. *)

type comparator = Below | Above

type t = {
  name : string;
  sub : Subsystem.t;
  help : string;
  unit_ : string;
  comparator : comparator;
  threshold : float;
  window : Time.t;
  fast_windows : int;
  slow_windows : int;
  fire_after : int;
  resolve_after : int;
  hysteresis : float;
}

let make ?(help = "") ?(unit_ = "") ?(comparator = Below)
    ?(window = Time.ms 100) ?(fast_windows = 1) ?(slow_windows = 5)
    ?(fire_after = 2) ?(resolve_after = 2) ?hysteresis ~sub ~threshold name =
  if name = "" then invalid_arg "Slo.make: empty name";
  if Time.(window <= Time.zero) then
    invalid_arg "Slo.make: window must be positive";
  if fast_windows < 1 then invalid_arg "Slo.make: fast_windows < 1";
  if slow_windows < fast_windows then
    invalid_arg "Slo.make: slow_windows < fast_windows";
  if fire_after < 1 then invalid_arg "Slo.make: fire_after < 1";
  if resolve_after < 1 then invalid_arg "Slo.make: resolve_after < 1";
  let hysteresis = Option.value hysteresis ~default:1.0 in
  if hysteresis <= 0.0 then invalid_arg "Slo.make: hysteresis <= 0";
  (* The resolve threshold ([hysteresis * threshold]) must sit on the
     healthy side of the fire threshold, or an alert could resolve
     while still in breach. *)
  (match comparator with
  | Below ->
      if hysteresis > 1.0 then
        invalid_arg "Slo.make: Below comparator needs hysteresis <= 1"
  | Above ->
      if hysteresis < 1.0 then
        invalid_arg "Slo.make: Above comparator needs hysteresis >= 1");
  {
    name;
    sub;
    help;
    unit_;
    comparator;
    threshold;
    window;
    fast_windows;
    slow_windows;
    fire_after;
    resolve_after;
    hysteresis;
  }

(* The value a slow-window aggregate must reach before a firing alert
   may resolve.  With hysteresis 1.0 this is the fire threshold itself;
   tighter hysteresis (e.g. 0.8 for Below) demands the signal recover
   clear of the boundary, which is what stops flapping on a signal that
   rides the threshold. *)
let resolve_threshold t = t.hysteresis *. t.threshold

let violates t v =
  match t.comparator with Below -> v > t.threshold | Above -> v < t.threshold

let recovers t v =
  let r = resolve_threshold t in
  match t.comparator with Below -> v <= r | Above -> v >= r

let comparator_string = function Below -> "below" | Above -> "above"
