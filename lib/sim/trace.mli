(** Typed in-memory event trace.

    Components record spans and instants tagged with a {!Subsystem.t},
    a category and key/value arguments; tests and the CLI inspect or
    export the result.  The sink is a bounded ring by default — the
    oldest events are dropped (and counted) once at capacity — or
    unbounded for full-fidelity export.  Disabled traces cost one
    branch per record.

    {b Causal flows.}  A flow is a single request travelling through
    the system — one video frame from camera to display, one RPC from
    client to file server and back.  Producers allocate a flow id with
    {!alloc_flow}, mark its birth with {!flow_start}, each hop with
    {!flow_step} and its completion with {!flow_end}; {!Audit} then
    reconstructs per-stream critical paths from the recorded events.
    Flow recording is off by default and gated separately from the
    trace itself (see {!set_flows}): record sites guard on the
    precomputed {!flows_on} predicate, so a disabled flow layer costs
    one branch.  Cell-level detail (see {!set_cell_detail}) is the
    orthogonal switch that full-fidelity consumers flip; the ATM train
    fast path only falls back to per-cell modelling for {e that} level
    of detail, never merely because flows are being recorded.

    Two exporters are provided: the Chrome [trace_event] JSON object
    format (loadable in about:tracing and Perfetto, flows rendered as
    arrows) and line-oriented JSONL for ad-hoc processing. *)

type t

(** Argument values attached to events. *)
type arg =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type phase = Instant | Complete | Flow_start | Flow_step | Flow_end

type event = {
  ev_ts : Time.t;
  ev_dur : Time.t option;  (** [Some] for completed spans. *)
  ev_phase : phase;
  ev_sub : Subsystem.t;
  ev_cat : string;
  ev_name : string;
  ev_flow : int;  (** Flow id; {!no_flow} when uncorrelated. *)
  ev_args : (string * arg) list;
}

type span
(** In-flight span handle returned by {!span_begin}. *)

val create : ?capacity:int -> ?unbounded:bool -> ?enabled:bool -> unit -> t
(** Ring of [capacity] (default 4096) entries, or an unbounded sink
    when [unbounded] is set.  Flow recording starts off; cell detail
    starts on. *)

val default : t
(** Process-wide sink used by {!Engine.create} when none is supplied.
    Disabled until a driver (e.g. [pegasus_cli --trace-out]) turns it
    on. *)

val enable : t -> bool -> unit
val enabled : t -> bool

val set_capacity : t -> int option -> unit
(** Resize to a ring of the given size, or unbounded for [None].
    Clears recorded events {e and} resets the drop counter to zero —
    resizing mid-run restarts the sink, so post-resize statistics
    describe the new capacity only.  Safe while recording is active;
    the next {!events} call sees only events recorded after the
    resize. *)

val clear : t -> unit
(** Drop recorded events and reset the drop counter.  Flow-id
    allocation is {e not} reset: ids stay unique across a run. *)

(** {1 Flow ids} *)

val no_flow : int
(** The sentinel id ([-1]) carried by events that belong to no flow. *)

val alloc_flow : t -> int
(** Next flow id from a deterministic per-sink counter (1, 2, ...).
    Allocation is independent of whether recording is on, so traced
    and untraced runs stay schedule-identical. *)

val set_flows : t -> bool -> unit
(** Turn flow recording on or off (default off).  Effective only while
    the sink itself is {!enable}d. *)

val flows_on : t -> bool
(** Precomputed [enabled && flows]: the one-branch guard for flow
    record sites. *)

val set_cell_detail : t -> bool -> unit
(** Request per-cell detail (default on).  The ATM layer consults
    {!cell_detail_on} to decide whether bursts must be modelled
    cell-by-cell for full-fidelity traces; flow-only consumers turn
    this off to keep the train fast path intact. *)

val cell_detail_on : t -> bool
(** Precomputed [enabled && cell_detail]. *)

(** {1 Recording} *)

val instant :
  t ->
  ts:Time.t ->
  sub:Subsystem.t ->
  ?cat:string ->
  ?flow:int ->
  ?args:(string * arg) list ->
  string ->
  unit
(** A point event, optionally bound to a flow. *)

val span_begin :
  t ->
  ts:Time.t ->
  sub:Subsystem.t ->
  ?cat:string ->
  ?flow:int ->
  ?args:(string * arg) list ->
  string ->
  span
(** Open a span; nothing is recorded until {!span_end}.  [flow] binds
    the eventual complete event to a flow. *)

val span_end : t -> ts:Time.t -> ?args:(string * arg) list -> span -> unit
(** Record the span as a complete event with its measured duration.
    [args] are appended to the ones given at {!span_begin}. *)

val complete :
  t ->
  ts:Time.t ->
  dur:Time.t ->
  sub:Subsystem.t ->
  ?cat:string ->
  ?flow:int ->
  ?args:(string * arg) list ->
  string ->
  unit
(** Record a span whose duration is already known. *)

val flow_start :
  t ->
  ts:Time.t ->
  sub:Subsystem.t ->
  ?cat:string ->
  ?args:(string * arg) list ->
  flow:int ->
  string ->
  unit
(** The birth of flow [flow].  By convention the ["stream"] arg names
    the stream the flow belongs to (e.g. ["cam0"]); {!Audit} groups
    flows into streams by it.  No-op unless {!flows_on}. *)

val flow_step :
  t ->
  ts:Time.t ->
  sub:Subsystem.t ->
  ?cat:string ->
  ?args:(string * arg) list ->
  flow:int ->
  string ->
  unit
(** One hop of flow [flow]; the event name labels the stage ending at
    [ts].  No-op unless {!flows_on}. *)

val flow_end :
  t ->
  ts:Time.t ->
  sub:Subsystem.t ->
  ?cat:string ->
  ?args:(string * arg) list ->
  flow:int ->
  string ->
  unit
(** The completion of flow [flow].  No-op unless {!flows_on}. *)

(** {1 Inspection} *)

val events : t -> event list
(** Retained events, oldest first. *)

val length : t -> int

val dropped : t -> int
(** Events lost to ring wraparound since creation (or the last
    {!clear}/{!set_capacity}). *)

(** {1 Legacy string API}

    Thin shim over the typed sink: each message becomes an instant
    event with subsystem {!Subsystem.Sim} and category ["legacy"]. *)

val record : t -> Time.t -> string -> unit

val recordf :
  t -> Time.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted {!record}; the message is only built when enabled. *)

val to_list : t -> (Time.t * string) list
(** Event timestamps and names, oldest first. *)

val pp : Format.formatter -> t -> unit
(** Prints retained entries; leads with the dropped count when events
    were lost to wraparound. *)

(** {1 Export} *)

val to_chrome : t -> Json.t
(** Chrome [trace_event] JSON: [process_name]/[thread_name] metadata
    events name the process and one lane per subsystem, flow events
    carry phases [s]/[t]/[f] with their id, timestamps are in
    microseconds, and the drop count appears both under ["otherData"]
    and as a final [trace_dropped] metadata record. *)

val to_jsonl : t -> string
(** One JSON object per line, oldest first, terminated by a footer
    line [{"meta":"dropped","dropped":N}] carrying the ring's drop
    counter. *)

val write_chrome : t -> string -> unit
val write_jsonl : t -> string -> unit
