(** Typed in-memory event trace.

    Components record spans and instants tagged with a {!Subsystem.t},
    a category and key/value arguments; tests and the CLI inspect or
    export the result.  The sink is a bounded ring by default — the
    oldest events are dropped (and counted) once at capacity — or
    unbounded for full-fidelity export.  Disabled traces cost one
    branch per record.

    Two exporters are provided: the Chrome [trace_event] JSON object
    format (loadable in about:tracing and Perfetto) and line-oriented
    JSONL for ad-hoc processing. *)

type t

(** Argument values attached to events. *)
type arg =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type phase = Instant | Complete

type event = {
  ev_ts : Time.t;
  ev_dur : Time.t option;  (** [Some] for completed spans. *)
  ev_phase : phase;
  ev_sub : Subsystem.t;
  ev_cat : string;
  ev_name : string;
  ev_args : (string * arg) list;
}

type span
(** In-flight span handle returned by {!span_begin}. *)

val create : ?capacity:int -> ?unbounded:bool -> ?enabled:bool -> unit -> t
(** Ring of [capacity] (default 4096) entries, or an unbounded sink
    when [unbounded] is set. *)

val default : t
(** Process-wide sink used by {!Engine.create} when none is supplied.
    Disabled until a driver (e.g. [pegasus_cli --trace-out]) turns it
    on. *)

val enable : t -> bool -> unit
val enabled : t -> bool

val set_capacity : t -> int option -> unit
(** Resize to a ring of the given size, or unbounded for [None].
    Clears recorded events and the drop counter. *)

val clear : t -> unit

(** {1 Recording} *)

val instant :
  t ->
  ts:Time.t ->
  sub:Subsystem.t ->
  ?cat:string ->
  ?args:(string * arg) list ->
  string ->
  unit
(** A point event. *)

val span_begin :
  t ->
  ts:Time.t ->
  sub:Subsystem.t ->
  ?cat:string ->
  ?args:(string * arg) list ->
  string ->
  span
(** Open a span; nothing is recorded until {!span_end}. *)

val span_end : t -> ts:Time.t -> ?args:(string * arg) list -> span -> unit
(** Record the span as a complete event with its measured duration.
    [args] are appended to the ones given at {!span_begin}. *)

val complete :
  t ->
  ts:Time.t ->
  dur:Time.t ->
  sub:Subsystem.t ->
  ?cat:string ->
  ?args:(string * arg) list ->
  string ->
  unit
(** Record a span whose duration is already known. *)

(** {1 Inspection} *)

val events : t -> event list
(** Retained events, oldest first. *)

val length : t -> int

val dropped : t -> int
(** Events lost to ring wraparound since creation (or the last
    {!clear}/{!set_capacity}). *)

(** {1 Legacy string API}

    Thin shim over the typed sink: each message becomes an instant
    event with subsystem {!Subsystem.Sim} and category ["legacy"]. *)

val record : t -> Time.t -> string -> unit

val recordf :
  t -> Time.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted {!record}; the message is only built when enabled. *)

val to_list : t -> (Time.t * string) list
(** Event timestamps and names, oldest first. *)

val pp : Format.formatter -> t -> unit
(** Prints retained entries; leads with the dropped count when events
    were lost to wraparound. *)

(** {1 Export} *)

val to_chrome : t -> Json.t
(** Chrome [trace_event] JSON: one thread lane per subsystem,
    timestamps in microseconds, drop count under ["otherData"]. *)

val to_jsonl : t -> string
(** One JSON object per line, oldest first. *)

val write_chrome : t -> string -> unit
val write_jsonl : t -> string -> unit
