type counter = {
  c_sub : Subsystem.t;
  c_name : string;
  c_help : string;
  mutable c_value : int;
}

(* The value lives in a one-element [floatarray] rather than a mutable
   float field: in a mixed record the float field is a pointer to a
   boxed float, so every [set] would allocate a fresh box, while a
   flat-float-array store is a plain unboxed write.  Hot-path writers
   (the engine's queue-depth sampler) grab the cell once and write
   through it inline, keeping gauge updates allocation-free. *)
type gauge = {
  g_sub : Subsystem.t;
  g_name : string;
  g_help : string;
  g_cell : floatarray;
}

(* A distribution's percentile store is either a bounded deterministic
   reservoir (the default: O(capacity) memory no matter how long the
   run) or the exact sample array (kept for tests and byte-for-byte
   regression baselines, O(n) memory). *)
type dist_store =
  | Exact of Stats.Samples.t
  | Sampled of Stats.Reservoir.t

type dist = {
  d_sub : Subsystem.t;
  d_name : string;
  d_help : string;
  d_summary : Stats.Summary.t;
  d_store : dist_store;
}

(* A windowed observer is a sample fan-out point: components call
   {!sample} unconditionally on their hot path, and the monitor layer
   ({!Monitor}) attaches sinks when a health run wants the stream.
   With no sinks attached the cost is one load and one branch — the
   instrument must be free to leave compiled into every subsystem.
   The sink array is only ever replaced wholesale (never mutated in
   place), so a sampler running concurrently with an attach sees either
   the old or the new array, both valid. *)
type observer = {
  o_sub : Subsystem.t;
  o_name : string;
  o_help : string;
  mutable o_on : bool;
  mutable o_count : int;  (* samples delivered while enabled *)
  mutable o_sinks : (float -> unit) array;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Dist of dist
  | Obs of observer

type t = { tbl : (string * string, metric) Hashtbl.t; exact_dists : bool }

let create ?(exact_dists = false) () =
  { tbl = Hashtbl.create 64; exact_dists }

let default = create ()

(* Zero every registered metric in place.  Handles alias the registry
   entries, so handles obtained before the reset keep working and their
   updates stay visible in snapshots — the old behaviour (dropping the
   table entries) silently disconnected every live handle. *)
let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c_value <- 0
      | Gauge g -> Float.Array.set g.g_cell 0 0.0
      | Dist d -> (
          Stats.Summary.clear d.d_summary;
          match d.d_store with
          | Exact s -> Stats.Samples.clear s
          | Sampled r -> Stats.Reservoir.clear r)
      | Obs o -> o.o_count <- 0)
    t.tbl

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Dist _ -> "dist"
  | Obs _ -> "observer"

let get_or_create t ~sub ~name ~kind make =
  let key = (Subsystem.to_string sub, name) in
  match Hashtbl.find_opt t.tbl key with
  | Some m ->
      let existing = kind_name m in
      if existing <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s/%s registered as %s, requested as %s"
             (fst key) name existing kind);
      m
  | None ->
      let m = make () in
      Hashtbl.replace t.tbl key m;
      m

let counter t ~sub ?(help = "") name =
  match
    get_or_create t ~sub ~name ~kind:"counter" (fun () ->
        Counter { c_sub = sub; c_name = name; c_help = help; c_value = 0 })
  with
  | Counter c -> c
  | Gauge _ | Dist _ | Obs _ -> assert false

let gauge t ~sub ?(help = "") name =
  match
    get_or_create t ~sub ~name ~kind:"gauge" (fun () ->
        Gauge
          { g_sub = sub; g_name = name; g_help = help; g_cell = Float.Array.make 1 0.0 })
  with
  | Gauge g -> g
  | Counter _ | Dist _ | Obs _ -> assert false

(* Each reservoir is seeded from its identity (FNV-1a over
   "subsystem/name"), so every dist draws an independent, reproducible
   replacement stream: snapshots are byte-identical across runs
   regardless of registration order. *)
let dist_seed sub name =
  let fnv seed s =
    String.fold_left
      (fun h c ->
        Int64.mul (Int64.logxor h (Int64.of_int (Char.code c))) 0x100000001B3L)
      seed s
  in
  fnv (fnv (fnv 0xCBF29CE484222325L sub) "/") name

let dist t ~sub ?(help = "") name =
  match
    get_or_create t ~sub ~name ~kind:"dist" (fun () ->
        let store =
          if t.exact_dists then Exact (Stats.Samples.create ())
          else
            Sampled
              (Stats.Reservoir.create
                 ~seed:(dist_seed (Subsystem.to_string sub) name)
                 ())
        in
        Dist
          {
            d_sub = sub;
            d_name = name;
            d_help = help;
            d_summary = Stats.Summary.create ();
            d_store = store;
          })
  with
  | Dist d -> d
  | Counter _ | Gauge _ | Obs _ -> assert false

let observer t ~sub ?(help = "") name =
  match
    get_or_create t ~sub ~name ~kind:"observer" (fun () ->
        Obs
          {
            o_sub = sub;
            o_name = name;
            o_help = help;
            o_on = false;
            o_count = 0;
            o_sinks = [||];
          })
  with
  | Obs o -> o
  | Counter _ | Gauge _ | Dist _ -> assert false

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let value c = c.c_value
let set g v = Float.Array.set g.g_cell 0 v
let get g = Float.Array.get g.g_cell 0
let cell g = g.g_cell

(* The disabled path is the contract: one load, one branch, no call —
   cheap enough to leave in every hot loop (CI gates it via
   BENCH_monitor.json).  The enabled path fans the sample out to every
   attached sink. *)
let sample o v =
  if o.o_on then begin
    o.o_count <- o.o_count + 1;
    let sinks = o.o_sinks in
    for i = 0 to Array.length sinks - 1 do
      (Array.unsafe_get sinks i) v
    done
  end

let attach_sink o f =
  o.o_sinks <- Array.append o.o_sinks [| f |];
  o.o_on <- true

let detach_sinks o =
  o.o_sinks <- [||];
  o.o_on <- false

let sample_count o = o.o_count
let enabled o = o.o_on

let observe d x =
  Stats.Summary.add d.d_summary x;
  match d.d_store with
  | Exact s -> Stats.Samples.add s x
  | Sampled r -> Stats.Reservoir.add r x

let observed d = Stats.Summary.count d.d_summary

let dist_percentile d q =
  match d.d_store with
  | Exact s -> Stats.Samples.percentile s q
  | Sampled r -> Stats.Reservoir.percentile r q

(* ------------------------------------------------------------------ *)
(* Snapshots. *)

let sorted_metrics t =
  Hashtbl.fold (fun key m acc -> (key, m) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

let json_of_metric m =
  let base sub name help kind =
    [
      ("subsystem", Json.String (Subsystem.to_string sub));
      ("name", Json.String name);
      ("kind", Json.String kind);
    ]
    @ if help = "" then [] else [ ("help", Json.String help) ]
  in
  match m with
  | Counter c ->
      Json.Obj (base c.c_sub c.c_name c.c_help "counter" @ [ ("value", Json.Int c.c_value) ])
  | Gauge g ->
      Json.Obj
        (base g.g_sub g.g_name g.g_help "gauge"
        @ [ ("value", Json.Float (Float.Array.get g.g_cell 0)) ])
  | Dist d ->
      let n = Stats.Summary.count d.d_summary in
      let stats =
        if n = 0 then [ ("count", Json.Int 0) ]
        else
          let p q = Json.Float (dist_percentile d q) in
          [
            ("count", Json.Int n);
            ("mean", Json.Float (Stats.Summary.mean d.d_summary));
            ("stddev", Json.Float (Stats.Summary.stddev d.d_summary));
            ("min", Json.Float (Stats.Summary.min d.d_summary));
            ("max", Json.Float (Stats.Summary.max d.d_summary));
            ("p50", p 50.0);
            ("p95", p 95.0);
            ("p99", p 99.0);
          ]
      in
      Json.Obj (base d.d_sub d.d_name d.d_help "dist" @ stats)
  | Obs o ->
      Json.Obj
        (base o.o_sub o.o_name o.o_help "observer"
        @ [ ("enabled", Json.Bool o.o_on); ("samples", Json.Int o.o_count) ])

let snapshot t =
  Json.Obj [ ("metrics", Json.List (List.map json_of_metric (sorted_metrics t))) ]

let write t path = Json.to_file path (snapshot t)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun m ->
      match m with
      | Counter c ->
          Format.fprintf fmt "%a/%s = %d@," Subsystem.pp c.c_sub c.c_name c.c_value
      | Gauge g ->
          Format.fprintf fmt "%a/%s = %g@," Subsystem.pp g.g_sub g.g_name
            (Float.Array.get g.g_cell 0)
      | Dist d ->
          let n = Stats.Summary.count d.d_summary in
          if n = 0 then
            Format.fprintf fmt "%a/%s: empty@," Subsystem.pp d.d_sub d.d_name
          else
            Format.fprintf fmt "%a/%s: n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f@,"
              Subsystem.pp d.d_sub d.d_name n
              (Stats.Summary.mean d.d_summary)
              (dist_percentile d 50.0)
              (dist_percentile d 95.0)
              (dist_percentile d 99.0)
      | Obs o ->
          Format.fprintf fmt "%a/%s: observer %s samples=%d@," Subsystem.pp
            o.o_sub o.o_name
            (if o.o_on then "on" else "off")
            o.o_count)
    (sorted_metrics t);
  Format.fprintf fmt "@]"
