(** Bounded SPSC FIFO for cross-shard messages.

    A power-of-two ring carries the common case; pushes beyond the ring
    spill to an unbounded overflow queue (counted in {!overflows}) so a
    conservative simulation never loses an event — the capacity bounds
    the fast path, not correctness.  FIFO order holds across the spill.

    The mailbox itself contains no locks or atomics: it relies on the
    {!Shard} phase discipline — one producer pushes strictly before a
    barrier, one consumer pops strictly after it, and the barrier
    publishes the writes.  Do not share one mailbox between concurrent
    pushers or poppers. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Ring of at least [capacity] (default 1024) slots, rounded up to a
    power of two.  Raises [Invalid_argument] when [capacity < 1]. *)

val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Entries currently queued, ring and spill together. *)

val capacity : 'a t -> int
(** The ring (fast-path) size actually allocated. *)

val overflows : 'a t -> int
(** Total pushes that missed the ring since creation — a sizing signal,
    not an error count. *)
