(** Online statistics for simulation measurements. *)

(** Streaming summary: count, mean, variance (Welford), min, max. *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val clear : t -> unit
  (** Reset to the freshly-created state, in place. *)

  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float
  val merge : t -> t -> t
  val pp : Format.formatter -> t -> unit
end

(** Sample store with exact percentiles (sorts lazily on query). *)
module Samples : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val clear : t -> unit
  (** Drop every sample, in place (capacity is retained). *)

  val count : t -> int
  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [\[0, 100\]].  Raises [Invalid_argument]
      when empty. *)

  val mean : t -> float
  val min : t -> float
  val max : t -> float
  (** {!mean}, {!min}, {!max} and {!percentile} all raise
      [Invalid_argument] on an empty store — there is no statistic of
      zero samples, and returning a default would let an empty set
      masquerade as a measured value.  Guard with {!count} when empty
      is a legitimate state. *)

  val to_array : t -> float array
end

(** Bounded-memory sample store: a fixed-capacity uniform random sample
    (Vitter's Algorithm R) of an unbounded observation stream.

    Replacement decisions come from an explicit seeded {!Rng}
    generator, so the retained sample — and every percentile computed
    from it — is a deterministic function of [(seed, observations)]:
    two runs that observe the same stream snapshot byte-identically.

    Accuracy: the first [capacity] observations are stored verbatim, so
    below capacity percentiles are {e exact} (identical to {!Samples}).
    Beyond capacity, a percentile estimate from a uniform sample of
    size [k] has standard error ~[sqrt (p * (1-p) / k)] in rank space:
    with the default capacity of 1024 that is ±1.6 rank-percentage
    points for p50 and ±0.7 for p95/p99 (one sigma), independent of
    stream length.  Use {!Samples} when exact order statistics
    matter. *)
module Reservoir : sig
  type t

  val default_capacity : int
  (** 1024. *)

  val create : ?capacity:int -> ?seed:int64 -> unit -> t
  (** Raises [Invalid_argument] if [capacity <= 0].  The default seed
      is a fixed constant, so reservoirs created without one behave
      identically across runs. *)

  val capacity : t -> int

  val add : t -> float -> unit

  val count : t -> int
  (** Total observations seen (not the number retained). *)

  val stored : t -> int
  (** Number of observations currently retained,
      [min count capacity]. *)

  val clear : t -> unit
  (** Drop every sample and restart the replacement stream from the
      seed, in place: a cleared reservoir replays exactly like a fresh
      one. *)

  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [\[0, 100\]], over the retained
      sample.  Raises [Invalid_argument] when empty. *)

  val to_array : t -> float array
  (** The retained sample, in insertion/replacement order. *)
end

(** Fixed-width bucket histogram over [\[0, width * buckets)]; values
    beyond the last bucket are clamped into it.  NaN and negative
    samples are not bucketed (they carry no position information) —
    they are tallied in a separate out-of-range counter instead. *)
module Histogram : sig
  type t

  val create : bucket_width:float -> buckets:int -> t
  val add : t -> float -> unit
  val count : t -> int
  (** Number of bucketed (in-range) samples. *)

  val out_of_range : t -> int
  (** Number of NaN or negative samples rejected by {!add}. *)

  val bucket_count : t -> int -> int
  val pp : Format.formatter -> t -> unit
end

(** Named monotonic counters. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> string -> unit
  val get : t -> string -> int
  val to_list : t -> (string * int) list
end
