(** Conservative parallel simulation over engine shards.

    A sharded simulation partitions its model into [n] shards, each
    owning a private {!Engine.t} (heap, clock, trace, metrics).  Within
    a shard, components schedule on the shard's engine exactly as in a
    sequential simulation; interactions that cross shards go through
    {!post}, which carries a callback to another shard's engine through
    a bounded SPSC {!Mailbox}.

    Execution is barrier-epoch conservative PDES.  The [lookahead] is
    the minimum simulated latency of any cross-shard interaction —
    typically the smallest propagation delay among the topology links
    cut by the partition (see [Atm.Net.partition]).  Every epoch, all
    shards advance to [min(next event) + lookahead] (exclusive), then
    exchange messages at a barrier.  Because {!post} refuses timestamps
    under [now + lookahead], no shard can ever receive a message for an
    instant it has already passed.

    Same-instant cross-shard ties are broken by [(source shard,
    sequence)], so the whole simulation is a pure function of its
    inputs: results are byte-identical whatever [domains] count
    {!run} is given — on OCaml 4.14, where real domains do not exist,
    the identical epoch loop simply runs sequentially. *)

type t

val create : ?lookahead:Time.t -> shards:int -> unit -> t
(** [shards] fresh engines, each with its own disabled trace and private
    metrics registry so shards share no mutable state.  [lookahead]
    (default 1 us) must be positive; it is the floor every {!post}
    must respect, so it must not exceed the true minimum cross-shard
    latency of the model.  Raises [Invalid_argument] on [shards < 1] or
    a non-positive lookahead. *)

val of_engines : ?lookahead:Time.t -> Engine.t array -> t
(** Wrap existing engines (e.g. a single-engine scenario in a 1-shard
    runner).  The engines must not be shared between shards or driven
    concurrently by anything else. *)

val shards : t -> int
val lookahead : t -> Time.t

val engine : t -> int -> Engine.t
(** The engine owned by a shard; build each shard's model on it. *)

val post : t -> src:int -> dst:int -> at:Time.t -> (unit -> unit) -> unit
(** Deliver a callback to shard [dst]'s engine at absolute time [at].
    Must be called from shard [src]'s own execution (or during setup,
    before {!run}).  Raises [Invalid_argument] unless
    [at >= now(src) + lookahead] — the conservative contract.
    Messages never outrun the lookahead horizon, so the callback is
    scheduled before [dst] reaches [at]; ties at one instant order by
    [(src, posting sequence)] after all local events already queued. *)

val run : ?domains:int -> ?until:Time.t -> t -> unit
(** Run the sharded simulation on [domains] workers (default 1; clamped
    to the shard count, and to 1 when {!Par.available} is false).
    Without [until], runs until no shard has non-daemon work left —
    like {!Engine.run}, though daemon events may additionally fire up
    to the final epoch horizon.  With [until], runs every event with
    timestamp [<= until] and leaves every shard clock at exactly
    [until].  The [domains] count affects wall-clock speed only, never
    results.  Not reentrant. *)

(** {1 Introspection} *)

val epochs : t -> int
(** Barrier epochs executed so far (0 for single-shard runs, which
    delegate straight to {!Engine.run}). *)

val messages : t -> int
(** Cross-shard messages delivered so far. *)

val overflows : t -> int
(** Mailbox pushes that missed the bounded fast path and spilled (see
    {!Mailbox.overflows}); messages are never lost, this is a sizing
    signal. *)
