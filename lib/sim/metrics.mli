(** Metrics registry: named counters, gauges and latency distributions.

    Subsystems get-or-create metrics by [(subsystem, name)] at
    construction time and update them on the hot path through the
    returned handle (an unboxed field write — no hashing per update).
    Instances of the same component share one aggregate metric, so the
    registry stays small no matter how many switches or links a
    simulation builds.

    Distributions are backed by a streaming {!Stats.Summary} (count,
    mean, stddev, min, max — always exact) plus a percentile store
    snapshotted as p50/p95/p99.  By default the store is a bounded
    deterministic {!Stats.Reservoir} (1024 samples, seeded from the
    metric's own name), so a dist observed millions of times costs
    O(1) memory and its snapshot is still byte-reproducible across
    runs; percentiles are exact below 1024 observations and carry the
    sampling tolerance documented on {!Stats.Reservoir} beyond it
    (±1.6 rank points for p50, ±0.7 for p95/p99, one sigma).  Pass
    [~exact_dists:true] to {!create} to store every observation instead
    (exact percentiles, O(n) memory) — intended for tests and
    regression baselines.

    A snapshot of the whole registry dumps as deterministic JSON
    (sorted by subsystem then name), which is what
    [pegasus_cli --metrics-out] and the benchmark harness emit. *)

type t

type counter
type gauge
type dist

type observer
(** A windowed-sample fan-out point.  Components {!sample} values on
    their hot path unconditionally; the sample is dropped (one load and
    one branch — a few ns, CI-gated) unless a consumer such as
    {!Monitor} has attached a sink with {!attach_sink}.  This is how
    health runs tap per-event latencies without the component knowing
    about SLO windows, and without any cost to runs that don't
    monitor. *)

val create : ?exact_dists:bool -> unit -> t
(** [exact_dists] (default [false]) makes every dist registered in
    this registry store all observations exactly instead of reservoir-
    sampling them. *)

val default : t
(** Process-wide registry used by {!Engine.create} when none is
    supplied (reservoir-backed dists). *)

val reset : t -> unit
(** Zero every registered metric in place: counters to 0, gauges to
    0.0, distributions emptied.  Handles alias the registry entries
    rather than copying them, so handles obtained before the reset
    remain connected — updates made through them stay visible in later
    snapshots. *)

(** {1 Registration (get-or-create)}

    Re-registering the same [(subsystem, name)] returns the existing
    metric; a kind mismatch raises [Invalid_argument]. *)

val counter : t -> sub:Subsystem.t -> ?help:string -> string -> counter
val gauge : t -> sub:Subsystem.t -> ?help:string -> string -> gauge
val dist : t -> sub:Subsystem.t -> ?help:string -> string -> dist
val observer : t -> sub:Subsystem.t -> ?help:string -> string -> observer

(** {1 Updates} *)

val incr : ?by:int -> counter -> unit
val value : counter -> int

val set : gauge -> float -> unit
val get : gauge -> float

val cell : gauge -> floatarray
(** The gauge's one-element backing store.  A hot-path writer that must
    not allocate fetches the cell once at setup and updates with
    [Float.Array.set cell 0 v] inline — an unboxed store, unlike
    calling {!set} with a freshly computed float, which boxes the
    argument at the call boundary. *)

val observe : dist -> float -> unit
val observed : dist -> int
(** Number of observations recorded. *)

val sample : observer -> float -> unit
(** Deliver a sample to every attached sink.  With no sinks attached
    this is one load and one branch — safe on any hot path. *)

val attach_sink : observer -> (float -> unit) -> unit
(** Attach a sink and enable the observer.  Multiple sinks may be
    attached (several SLOs can watch one stream); each sample is
    delivered to all of them in attachment order. *)

val detach_sinks : observer -> unit
(** Drop every sink and disable the observer. *)

val sample_count : observer -> int
(** Samples delivered while enabled (dropped samples are not counted). *)

val enabled : observer -> bool

(** {1 Snapshots} *)

val snapshot : t -> Json.t
(** [{"metrics": [...]}] with one object per metric, sorted by
    subsystem then name.  Distributions carry count/mean/stddev/min/
    max/p50/p95/p99 (count only when empty). *)

val write : t -> string -> unit
(** Write {!snapshot} to a file. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line-per-metric dump. *)
