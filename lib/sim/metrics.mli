(** Metrics registry: named counters, gauges and latency distributions.

    Subsystems get-or-create metrics by [(subsystem, name)] at
    construction time and update them on the hot path through the
    returned handle (an unboxed field write — no hashing per update).
    Instances of the same component share one aggregate metric, so the
    registry stays small no matter how many switches or links a
    simulation builds.

    Distributions are backed by a streaming {!Stats.Summary} (count,
    mean, stddev) plus exact {!Stats.Samples} percentiles, snapshotted
    as p50/p95/p99.

    A snapshot of the whole registry dumps as deterministic JSON
    (sorted by subsystem then name), which is what
    [pegasus_cli --metrics-out] and the benchmark harness emit. *)

type t

type counter
type gauge
type dist

val create : unit -> t

val default : t
(** Process-wide registry used by {!Engine.create} when none is
    supplied. *)

val reset : t -> unit
(** Drop every registered metric.  Handles obtained before the reset
    keep working but are no longer reachable from snapshots. *)

(** {1 Registration (get-or-create)}

    Re-registering the same [(subsystem, name)] returns the existing
    metric; a kind mismatch raises [Invalid_argument]. *)

val counter : t -> sub:Subsystem.t -> ?help:string -> string -> counter
val gauge : t -> sub:Subsystem.t -> ?help:string -> string -> gauge
val dist : t -> sub:Subsystem.t -> ?help:string -> string -> dist

(** {1 Updates} *)

val incr : ?by:int -> counter -> unit
val value : counter -> int

val set : gauge -> float -> unit
val get : gauge -> float

val observe : dist -> float -> unit
val observed : dist -> int
(** Number of observations recorded. *)

(** {1 Snapshots} *)

val snapshot : t -> Json.t
(** [{"metrics": [...]}] with one object per metric, sorted by
    subsystem then name.  Distributions carry count/mean/stddev/min/
    max/p50/p95/p99 (count only when empty). *)

val write : t -> string -> unit
(** Write {!snapshot} to a file. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line-per-metric dump. *)
