(* 4-ary implicit min-heap over parallel arrays.

   The previous implementation stored one boxed record per entry and
   swapped whole records on every sift step, so each comparison chased
   two pointers and each level of the (binary) tree cost a cache line.
   Here keys and sequence numbers live in plain [int array]s — arrays
   of immediates, no per-element indirection — and values in a third
   parallel array.  A 4-ary layout halves the tree depth, and sifting
   moves the displaced element through a "hole" instead of swapping, so
   each level is one read and one write per array.

   Keys arrive as [int64] (simulated nanoseconds) but are stored as
   native [int]s: on 64-bit platforms an [int] holds 63 bits, which at
   nanosecond resolution is ~146 years of simulated time, and the rest
   of the codebase already assumes this (see [Time.to_ns]).  A key that
   does not round-trip through [int] is rejected rather than silently
   reordered. *)

type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable len : int;
}

let create () = { keys = [||]; seqs = [||]; vals = [||]; len = 0 }
let length h = h.len
let is_empty h = h.len = 0

(* Slots at index >= len are never read, so the value slot may hold an
   immediate instead of a ['a]; storing one releases whatever value
   (and closure) the slot used to reference. *)
let hole : 'a. unit -> 'a = fun () -> Obj.magic 0

let grow h =
  let cap = Array.length h.keys in
  if h.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nkeys = Array.make ncap 0 and nseqs = Array.make ncap 0 in
    let nvals = Array.make ncap (hole ()) in
    Array.blit h.keys 0 nkeys 0 h.len;
    Array.blit h.seqs 0 nseqs 0 h.len;
    Array.blit h.vals 0 nvals 0 h.len;
    h.keys <- nkeys;
    h.seqs <- nseqs;
    h.vals <- nvals
  end

let key_of_int64 key =
  let k = Int64.to_int key in
  if Int64.of_int k <> key then
    invalid_arg "Heap.push: key exceeds native int range";
  k

let push_ns h ~key:k ~seq value =
  grow h;
  (* Sift up through a hole: parents move down until the insertion
     point is found, then the new element is written exactly once. *)
  let i = ref h.len in
  h.len <- h.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 4 in
    let pk = h.keys.(p) in
    if k < pk || (k = pk && seq < h.seqs.(p)) then begin
      h.keys.(!i) <- pk;
      h.seqs.(!i) <- h.seqs.(p);
      h.vals.(!i) <- h.vals.(p);
      i := p
    end
    else continue := false
  done;
  h.keys.(!i) <- k;
  h.seqs.(!i) <- seq;
  h.vals.(!i) <- value

let push h ~key ~seq value = push_ns h ~key:(key_of_int64 key) ~seq value

let peek h =
  if h.len = 0 then None
  else Some (Int64.of_int h.keys.(0), h.seqs.(0), h.vals.(0))

let min_key_ns h = if h.len = 0 then max_int else h.keys.(0)
let min_seq_ns h = if h.len = 0 then max_int else h.seqs.(0)

(* The allocation-free extraction path: the caller reads the key with
   {!min_key_ns} first (the engine needs it to advance the clock), so
   only the value crosses the interface. *)
let pop_min h =
  if h.len = 0 then invalid_arg "Heap.pop_min: empty";
  let top_v = h.vals.(0) in
  h.len <- h.len - 1;
  let n = h.len in
  (* Clear the vacated slot: without this the popped value — or a
     stale alias of one popped later — stays reachable from the
     array until the slot is overwritten by a future push. *)
  let lk = h.keys.(n) and ls = h.seqs.(n) in
  let lv = h.vals.(n) in
  h.vals.(n) <- hole ();
  if n > 0 then begin
    (* Sift the former last element down through a hole from the
       root: at each level pick the smallest of up to 4 children. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let c0 = (4 * !i) + 1 in
      if c0 >= n then continue := false
      else begin
        let last = Stdlib.min (c0 + 3) (n - 1) in
        let m = ref c0 in
        let mk = ref h.keys.(c0) and ms = ref h.seqs.(c0) in
        for c = c0 + 1 to last do
          let ck = h.keys.(c) in
          if ck < !mk || (ck = !mk && h.seqs.(c) < !ms) then begin
            m := c;
            mk := ck;
            ms := h.seqs.(c)
          end
        done;
        if !mk < lk || (!mk = lk && !ms < ls) then begin
          h.keys.(!i) <- !mk;
          h.seqs.(!i) <- !ms;
          h.vals.(!i) <- h.vals.(!m);
          i := !m
        end
        else continue := false
      end
    done;
    h.keys.(!i) <- lk;
    h.seqs.(!i) <- ls;
    h.vals.(!i) <- lv
  end;
  top_v

let pop h =
  if h.len = 0 then None
  else begin
    let top_key = h.keys.(0) and top_seq = h.seqs.(0) in
    let top_v = pop_min h in
    Some (Int64.of_int top_key, top_seq, top_v)
  end

let clear h =
  h.keys <- [||];
  h.seqs <- [||];
  h.vals <- [||];
  h.len <- 0
