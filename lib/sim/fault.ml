type t = {
  engine : Engine.t;
  rng : Rng.t;
  m_events : Metrics.counter;
  mutable injected : int;
}

let create ?(seed = 0x0FA17FA17L) engine =
  {
    engine;
    rng = Rng.create ~seed ();
    m_events =
      Metrics.counter (Engine.metrics engine) ~sub:Subsystem.Sim
        ~help:"fault transitions injected (downs, ups, spike edges)"
        "fault.events";
    injected = 0;
  }

let engine t = t.engine
let rng t = t.rng
let fork t = { t with rng = Rng.split t.rng }
let events_injected t = t.injected

let mark t name =
  t.injected <- t.injected + 1;
  Metrics.incr t.m_events;
  let tr = Engine.trace t.engine in
  if Trace.enabled tr then
    Trace.instant tr ~ts:(Engine.now t.engine) ~sub:Subsystem.Sim ~cat:"fault"
      name

let bernoulli t ~p =
  if p <= 0.0 then fun () -> false
  else if p >= 1.0 then fun () -> true
  else begin
    let stream = Rng.split t.rng in
    fun () -> Rng.float stream < p
  end

let clamp_future t at = Time.max at (Engine.now t.engine)

let window t ~at ~duration ~down ~up =
  let at = clamp_future t at in
  ignore
    (Engine.schedule_at t.engine ~at (fun () ->
         mark t "window.down";
         down ()));
  ignore
    (Engine.schedule_at t.engine ~at:(Time.add at duration) (fun () ->
         mark t "window.up";
         up ()))

let permanent t ~at f =
  let at = clamp_future t at in
  ignore
    (Engine.schedule_at t.engine ~at (fun () ->
         mark t "permanent.down";
         f ()))

let draw_exp t mean =
  Time.of_sec_f (Rng.exponential t.rng ~mean:(Time.to_sec_f mean))

let outages t ?start ~span ~mean_up ~mean_down ~down ~up () =
  let start =
    match start with
    | Some s -> clamp_future t s
    | None -> Engine.now t.engine
  in
  let stop = Time.add start span in
  let rec healthy_from at =
    let fail_at = Time.add at (draw_exp t mean_up) in
    if Time.(fail_at < stop) then
      ignore
        (Engine.schedule_at t.engine ~at:fail_at (fun () ->
             mark t "outage.down";
             down ();
             let heal_at = Time.min stop (Time.add fail_at (draw_exp t mean_down)) in
             ignore
               (Engine.schedule_at t.engine ~at:heal_at (fun () ->
                    mark t "outage.up";
                    up ();
                    healthy_from heal_at))))
  in
  healthy_from start

let latency_spikes t ?start ~span ~mean_gap ~mean_duration ~max_extra ~set
    ~clear () =
  let start =
    match start with
    | Some s -> clamp_future t s
    | None -> Engine.now t.engine
  in
  let stop = Time.add start span in
  let rec quiet_from at =
    let spike_at = Time.add at (draw_exp t mean_gap) in
    if Time.(spike_at < stop) then
      ignore
        (Engine.schedule_at t.engine ~at:spike_at (fun () ->
             let extra =
               Time.of_sec_f
                 (Rng.uniform t.rng ~lo:0.0 ~hi:(Time.to_sec_f max_extra))
             in
             mark t "spike.set";
             set (Time.max (Time.ns 1) extra);
             let end_at =
               Time.min stop (Time.add spike_at (draw_exp t mean_duration))
             in
             ignore
               (Engine.schedule_at t.engine ~at:end_at (fun () ->
                    mark t "spike.clear";
                    clear ();
                    quiet_from end_at))))
  in
  quiet_from start
