(* Online SLO evaluation in simulated time.

   Each registered objective accumulates its signal into tumbling
   sub-windows of length [slo.window], rolled by a daemon event chain
   aligned to absolute multiples of the window.  At every roll two
   sliding aggregates are computed over the sub-window ring — fast
   (last [fast_windows]) and slow (last [slow_windows]) — and a
   three-state machine advances:

     Ok --breach--> Pending --fire_after consecutive--> Firing
     Pending --clean roll--> Ok            (silent: never fired)
     Firing --slow recovered resolve_after times--> Ok  ("resolved")

   Determinism: rolls are ordinary engine events at instants that are a
   pure function of the window length (absolute multiples), sources
   read only state owned by the same engine, and {!Shard} flushes
   sampled gauges at every barrier — so a sharded run evaluates every
   window identically at --domains 1, 2 and 4.  A monitor watches ONE
   engine; sharded rigs attach one monitor per shard and merge reports
   with {!report} over the monitor list in shard order. *)

type source =
  | Rate of (unit -> int)
  | Ratio of { num : unit -> int; den : unit -> int }
  | Level of (unit -> float)
  | Windowed of { obs : Metrics.observer; q : float }

type state = Ok | Pending | Firing

let state_string = function
  | Ok -> "ok"
  | Pending -> "pending"
  | Firing -> "firing"

type transition = { tr_at : Time.t; tr_event : string; tr_value : float }

(* A growable flat float buffer for windowed samples; slots swap with
   the live accumulation buffer at each roll, so steady state does not
   allocate. *)
type fbuf = { mutable fb_data : float array; mutable fb_len : int }

let fbuf () = { fb_data = [||]; fb_len = 0 }

let fbuf_add b v =
  if b.fb_len = Array.length b.fb_data then begin
    let ncap = if b.fb_len = 0 then 16 else b.fb_len * 2 in
    let nd = Array.make ncap 0.0 in
    Array.blit b.fb_data 0 nd 0 b.fb_len;
    b.fb_data <- nd
  end;
  b.fb_data.(b.fb_len) <- v;
  b.fb_len <- b.fb_len + 1

type entry = {
  slo : Slo.t;
  source : source;
  win_num : float array;  (* ring of slow_windows sub-window numerators *)
  win_den : float array;
  win_samples : fbuf array;  (* Windowed only; [||] otherwise *)
  mutable cur : fbuf;  (* live accumulation buffer (Windowed) *)
  mutable prev_num : int;  (* counter snapshot at the last roll *)
  mutable prev_den : int;
  mutable head : int;  (* next ring slot to write *)
  mutable filled : int;
  mutable state : state;
  mutable consec_breach : int;
  mutable consec_ok : int;
  mutable rolls : int;
  mutable breaches : int;
  mutable fired : int;
  mutable resolved : int;
  mutable last_value : float option;  (* fast aggregate at the last roll *)
  mutable worst : float option;
  mutable transitions_rev : transition list;
}

type t = {
  engine : Engine.t;
  mon_name : string;
  mutable entries_rev : entry list;
  m_pending : Metrics.counter;
  m_firing : Metrics.counter;
  m_resolved : Metrics.counter;
}

let create ?(name = "monitor") engine =
  let metrics = Engine.metrics engine in
  {
    engine;
    mon_name = name;
    entries_rev = [];
    m_pending =
      Metrics.counter metrics ~sub:Subsystem.Sim
        ~help:"SLO alerts entering the pending state" "monitor.pending";
    m_firing =
      Metrics.counter metrics ~sub:Subsystem.Sim
        ~help:"SLO alerts fired" "monitor.firing";
    m_resolved =
      Metrics.counter metrics ~sub:Subsystem.Sim
        ~help:"SLO alerts resolved" "monitor.resolved";
  }

let name t = t.mon_name
let engine t = t.engine

(* {1 Source constructors} *)

let counter_rate c = Rate (fun () -> Metrics.value c)

let counter_ratio ~num ~den =
  Ratio
    {
      num = (fun () -> Metrics.value num);
      den = (fun () -> Metrics.value den);
    }

let gauge_level g = Level (fun () -> Metrics.get g)
let windowed ?(q = 99.0) obs = Windowed { obs; q }

(* {1 Aggregation} *)

(* Same interpolation as {!Stats.Samples.percentile}, over a scratch
   array gathered from the last [j] sub-window buffers. *)
let percentile_of sorted n q =
  let rank = q /. 100.0 *. Float.of_int (n - 1) in
  let lo = Float.to_int (Float.floor rank) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = rank -. Float.of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

(* Aggregate over the last [j] completed sub-windows.  [None] means the
   objective has no data for the span — treated as healthy, so an idle
   signal neither fires nor blocks a resolution. *)
let aggregate e j =
  let k = e.slo.Slo.slow_windows in
  let j = Stdlib.min j e.filled in
  if j = 0 then None
  else
    match e.source with
    | Rate _ | Ratio _ ->
        let num = ref 0.0 and den = ref 0.0 in
        for i = 1 to j do
          let idx = (e.head - i + k) mod k in
          num := !num +. e.win_num.(idx);
          den := !den +. e.win_den.(idx)
        done;
        if !den <= 0.0 then None else Some (!num /. !den)
    | Level _ ->
        (* The worst sample over the span: max for a Below objective,
           min for an Above one. *)
        let worst = ref e.win_num.((e.head - 1 + k) mod k) in
        for i = 2 to j do
          let v = e.win_num.((e.head - i + k) mod k) in
          match e.slo.Slo.comparator with
          | Slo.Below -> if v > !worst then worst := v
          | Slo.Above -> if v < !worst then worst := v
        done;
        Some !worst
    | Windowed { q; _ } ->
        let total = ref 0 in
        for i = 1 to j do
          total := !total + e.win_samples.((e.head - i + k) mod k).fb_len
        done;
        if !total = 0 then None
        else begin
          let scratch = Array.make !total 0.0 in
          let pos = ref 0 in
          for i = 1 to j do
            let b = e.win_samples.((e.head - i + k) mod k) in
            Array.blit b.fb_data 0 scratch !pos b.fb_len;
            pos := !pos + b.fb_len
          done;
          Array.sort Float.compare scratch;
          Some (percentile_of scratch !total q)
        end

(* {1 The state machine} *)

let record t e event value =
  let now = Engine.now t.engine in
  e.transitions_rev <-
    { tr_at = now; tr_event = event; tr_value = value } :: e.transitions_rev;
  (match event with
  | "pending" -> Metrics.incr t.m_pending
  | "firing" -> Metrics.incr t.m_firing
  | "resolved" -> Metrics.incr t.m_resolved
  | _ -> ());
  let tr = Engine.trace t.engine in
  if Trace.enabled tr then
    Trace.instant tr ~ts:now ~sub:e.slo.Slo.sub ~cat:"health"
      ~args:
        [
          ("slo", Trace.Str e.slo.Slo.name);
          ("value", Trace.Float value);
          ("threshold", Trace.Float e.slo.Slo.threshold);
        ]
      ("slo_" ^ event)

let track_worst e v =
  match (e.worst, e.slo.Slo.comparator) with
  | None, _ -> e.worst <- Some v
  | Some w, Slo.Below -> if v > w then e.worst <- Some v
  | Some w, Slo.Above -> if v < w then e.worst <- Some v

let roll t e =
  let k = e.slo.Slo.slow_windows in
  (* Close the current sub-window into the ring. *)
  (match e.source with
  | Rate f ->
      let cur = f () in
      e.win_num.(e.head) <- Float.of_int (cur - e.prev_num);
      e.win_den.(e.head) <- Time.to_sec_f e.slo.Slo.window;
      e.prev_num <- cur
  | Ratio { num; den } ->
      let n = num () and d = den () in
      e.win_num.(e.head) <- Float.of_int (n - e.prev_num);
      e.win_den.(e.head) <- Float.of_int (d - e.prev_den);
      e.prev_num <- n;
      e.prev_den <- d
  | Level f -> e.win_num.(e.head) <- f ()
  | Windowed _ ->
      let slot = e.win_samples.(e.head) in
      e.win_samples.(e.head) <- e.cur;
      slot.fb_len <- 0;
      e.cur <- slot);
  e.head <- (e.head + 1) mod k;
  if e.filled < k then e.filled <- e.filled + 1;
  e.rolls <- e.rolls + 1;
  (* Evaluate. *)
  let fast = aggregate e e.slo.Slo.fast_windows in
  e.last_value <- fast;
  (match fast with Some v -> track_worst e v | None -> ());
  let breach =
    match fast with None -> false | Some v -> Slo.violates e.slo v
  in
  if breach then e.breaches <- e.breaches + 1;
  match e.state with
  | Ok | Pending ->
      if breach then begin
        let v = Option.get fast in
        e.consec_breach <- e.consec_breach + 1;
        if e.state = Ok then begin
          e.state <- Pending;
          record t e "pending" v
        end;
        if e.consec_breach >= e.slo.Slo.fire_after then begin
          e.state <- Firing;
          e.fired <- e.fired + 1;
          e.consec_ok <- 0;
          record t e "firing" v
        end
      end
      else begin
        e.consec_breach <- 0;
        (* A pending alert that sees a clean roll clears silently — it
           never fired, so there is nothing to resolve. *)
        if e.state = Pending then e.state <- Ok
      end
  | Firing ->
      (* While firing, the fast window is ignored: only a sustained
         recovery of the SLOW aggregate past the hysteresis threshold
         resolves — a signal riding the fire threshold cannot flap. *)
      let slow = aggregate e e.slo.Slo.slow_windows in
      let recovered =
        match slow with None -> true | Some v -> Slo.recovers e.slo v
      in
      if recovered then begin
        e.consec_ok <- e.consec_ok + 1;
        if e.consec_ok >= e.slo.Slo.resolve_after then begin
          e.state <- Ok;
          e.resolved <- e.resolved + 1;
          e.consec_breach <- 0;
          record t e "resolved"
            (Option.value slow ~default:(Slo.resolve_threshold e.slo))
        end
      end
      else e.consec_ok <- 0

(* Rolls are pinned to absolute multiples of the window so that every
   shard — and every domain count — schedules the same instants.  The
   chain is a daemon: monitoring never keeps a run alive. *)
let rec arm t e =
  let now_ns = Time.to_ns (Engine.now t.engine) in
  let w = Time.to_ns e.slo.Slo.window in
  let next = ((now_ns / w) + 1) * w in
  ignore
    (Engine.schedule_at ~daemon:true t.engine ~at:(Time.ns next) (fun () ->
         roll t e;
         arm t e))

let register t slo source =
  let k = slo.Slo.slow_windows in
  let is_windowed = match source with Windowed _ -> true | _ -> false in
  let e =
    {
      slo;
      source;
      win_num = Array.make k 0.0;
      win_den = Array.make k 0.0;
      win_samples =
        (if is_windowed then Array.init k (fun _ -> fbuf ()) else [||]);
      cur = fbuf ();
      prev_num = 0;
      prev_den = 0;
      head = 0;
      filled = 0;
      state = Ok;
      consec_breach = 0;
      consec_ok = 0;
      rolls = 0;
      breaches = 0;
      fired = 0;
      resolved = 0;
      last_value = None;
      worst = None;
      transitions_rev = [];
    }
  in
  (* Baseline counter snapshots so the first sub-window holds the delta
     since registration, not since process start. *)
  (match source with
  | Rate f -> e.prev_num <- f ()
  | Ratio { num; den } ->
      e.prev_num <- num ();
      e.prev_den <- den ()
  | Level _ -> ()
  | Windowed { obs; _ } ->
      Metrics.attach_sink obs (fun v -> fbuf_add e.cur v));
  t.entries_rev <- e :: t.entries_rev;
  arm t e

let entries t = List.length t.entries_rev

let firing_now t =
  List.fold_left
    (fun acc e -> if e.state = Firing then acc + 1 else acc)
    0 t.entries_rev

(* {1 Reports} *)

type alert_report = {
  r_slo : Slo.t;
  r_state : state;
  r_rolls : int;
  r_breaches : int;
  r_fired : int;
  r_resolved : int;
  r_last : float option;
  r_worst : float option;
  r_transitions : transition list;  (* chronological *)
}

type report = {
  rep_name : string;
  rep_alerts : alert_report list;  (* registration order, monitor order *)
}

let entry_report e =
  {
    r_slo = e.slo;
    r_state = e.state;
    r_rolls = e.rolls;
    r_breaches = e.breaches;
    r_fired = e.fired;
    r_resolved = e.resolved;
    r_last = e.last_value;
    r_worst = e.worst;
    r_transitions = List.rev e.transitions_rev;
  }

let report ?(name = "health") monitors =
  {
    rep_name = name;
    rep_alerts =
      List.concat_map
        (fun m -> List.rev_map entry_report m.entries_rev)
        monitors;
  }

(* Rendering.  Every float goes through %.2f (values) or %.1f
   (milliseconds), so the table and the JSON are byte-stable — the same
   discipline {!Audit} uses. *)

let value_string u = function
  | None -> "-"
  | Some v -> Printf.sprintf "%.2f%s" v u

let pp fmt r =
  let open Format in
  fprintf fmt "@[<v>== %s: %d objectives ==@," r.rep_name
    (List.length r.rep_alerts);
  List.iter
    (fun a ->
      let s = a.r_slo in
      fprintf fmt "@,%s/%s [%s %s %.2f%s]: %s@,"
        (Subsystem.to_string s.Slo.sub)
        s.Slo.name
        (Slo.comparator_string s.Slo.comparator)
        (match s.Slo.comparator with Slo.Below -> "<=" | Slo.Above -> ">=")
        s.Slo.threshold s.Slo.unit_
        (String.uppercase_ascii (state_string a.r_state));
      fprintf fmt "  rolls %d  breaches %d  fired %d  resolved %d  last %s  worst %s@,"
        a.r_rolls a.r_breaches a.r_fired a.r_resolved
        (value_string s.Slo.unit_ a.r_last)
        (value_string s.Slo.unit_ a.r_worst);
      List.iter
        (fun tr ->
          fprintf fmt "  %8.1f ms  %-8s  %.2f%s@," (Time.to_ms_f tr.tr_at)
            tr.tr_event tr.tr_value s.Slo.unit_)
        a.r_transitions)
    r.rep_alerts;
  let firing =
    List.fold_left
      (fun acc a -> if a.r_state = Firing then acc + 1 else acc)
      0 r.rep_alerts
  in
  let fired = List.fold_left (fun acc a -> acc + a.r_fired) 0 r.rep_alerts in
  let resolved =
    List.fold_left (fun acc a -> acc + a.r_resolved) 0 r.rep_alerts
  in
  fprintf fmt "@,%d fired, %d resolved, %d still firing@]" fired resolved
    firing

(* JSON rounds the same way the table prints (2 decimals), so the two
   renderings agree and both are byte-stable. *)
let json_val f = Json.Float (Float.round (f *. 100.0) /. 100.0)

let json_opt = function None -> Json.Null | Some v -> json_val v

let to_json r =
  Json.Obj
    [
      ("schema", Json.String "pegasus-health/1");
      ("name", Json.String r.rep_name);
      ( "alerts",
        Json.List
          (List.map
             (fun a ->
               let s = a.r_slo in
               Json.Obj
                 [
                   ("slo", Json.String s.Slo.name);
                   ("subsystem", Json.String (Subsystem.to_string s.Slo.sub));
                   ( "comparator",
                     Json.String (Slo.comparator_string s.Slo.comparator) );
                   ("threshold", json_val s.Slo.threshold);
                   ("unit", Json.String s.Slo.unit_);
                   ("window_ns", Json.Int (Time.to_ns s.Slo.window));
                   ("fast_windows", Json.Int s.Slo.fast_windows);
                   ("slow_windows", Json.Int s.Slo.slow_windows);
                   ("state", Json.String (state_string a.r_state));
                   ("rolls", Json.Int a.r_rolls);
                   ("breaches", Json.Int a.r_breaches);
                   ("fired", Json.Int a.r_fired);
                   ("resolved", Json.Int a.r_resolved);
                   ("last", json_opt a.r_last);
                   ("worst", json_opt a.r_worst);
                   ( "transitions",
                     Json.List
                       (List.map
                          (fun tr ->
                            Json.Obj
                              [
                                ("at_ns", Json.Int (Time.to_ns tr.tr_at));
                                ("event", Json.String tr.tr_event);
                                ("value", json_val tr.tr_value);
                              ])
                          a.r_transitions) );
                 ])
             r.rep_alerts) );
    ]
