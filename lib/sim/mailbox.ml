(* Bounded single-producer/single-consumer FIFO with an overflow spill.

   The fast path is a power-of-two ring indexed by free-running head and
   tail counters.  When the ring is full — or once anything has spilled,
   to preserve FIFO order — further pushes go to a two-list queue and
   are counted in [overflows].  The spill keeps a full epoch's worth of
   cross-shard messages from ever being dropped: a conservative
   simulation may not lose events, so the bound is a fast-path size, not
   a hard capacity.

   There is deliberately no internal synchronisation.  The shard runner
   guarantees phase separation: all pushes (by the producing shard's
   worker) happen before a barrier, all pops (by the consuming shard's
   worker) after it, and the barrier publishes the writes.  Within a
   phase the mailbox is single-threaded. *)

type 'a t = {
  ring : 'a option array;
  mask : int;
  mutable head : int;  (* next slot to pop *)
  mutable tail : int;  (* next slot to push *)
  mutable spill_front : 'a list;
  mutable spill_back : 'a list;  (* reversed *)
  mutable spilled : int;  (* entries currently in the spill *)
  mutable overflows : int;  (* total pushes that missed the ring *)
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Mailbox.create: capacity < 1";
  let cap = pow2 capacity 1 in
  {
    ring = Array.make cap None;
    mask = cap - 1;
    head = 0;
    tail = 0;
    spill_front = [];
    spill_back = [];
    spilled = 0;
    overflows = 0;
  }

let capacity t = t.mask + 1
let length t = t.tail - t.head + t.spilled
let is_empty t = length t = 0
let overflows t = t.overflows

let push t v =
  if t.spilled > 0 || t.tail - t.head > t.mask then begin
    (* Ring full, or older spilled entries exist: spill to keep FIFO. *)
    t.spill_back <- v :: t.spill_back;
    t.spilled <- t.spilled + 1;
    t.overflows <- t.overflows + 1
  end
  else begin
    t.ring.(t.tail land t.mask) <- Some v;
    t.tail <- t.tail + 1
  end

let pop t =
  if t.head < t.tail then begin
    let slot = t.head land t.mask in
    let v = t.ring.(slot) in
    t.ring.(slot) <- None;
    t.head <- t.head + 1;
    v
  end
  else
    match t.spill_front with
    | v :: rest ->
        t.spill_front <- rest;
        t.spilled <- t.spilled - 1;
        Some v
    | [] -> (
        match List.rev t.spill_back with
        | [] -> None
        | v :: rest ->
            t.spill_back <- [];
            t.spill_front <- rest;
            t.spilled <- t.spilled - 1;
            Some v)
