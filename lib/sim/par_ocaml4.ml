(* OCaml 4.14 fallback for the Par interface: no domains exist, so only
   single-worker execution is possible and everything runs inline on
   the caller.  Selected by a rule in lib/sim/dune; OCaml 5 builds get
   par_ocaml5.ml instead.  Callers (Shard.run, the E13 rig, the bench)
   clamp their worker count with [available], so the same programs run
   everywhere — sequentially here, in parallel on OCaml 5 — with
   identical results. *)

exception Barrier_poisoned

let available = false
let recommended_workers () = 1

let run ~workers f =
  if workers < 1 then invalid_arg "Par.run: workers < 1";
  if workers > 1 then
    invalid_arg "Par.run: parallel execution requires OCaml >= 5";
  f ~worker:0 ~sync:(fun () -> ())

let map ~workers:_ tasks =
  (* Same task order as the parallel build with one worker. *)
  Array.map (fun task -> task ()) tasks
