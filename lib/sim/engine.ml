(* The event loop is the innermost loop of every experiment, so the
   per-event path performs no allocation in steady state:

   - Event records live in an int arena: parallel arrays indexed by
     slot, with state, daemon flag and a generation counter packed
     into one [int] word and the callback in a companion array.  The
     priority queue carries only the slot index (an immediate), and
     the public {!event_id} is [(generation lsl 31) lor slot] — also
     an immediate — so scheduling, cancelling and firing touch no
     minor heap.  Freed slots are recycled through a stack; the
     generation bumps on every free, so a stale handle held across a
     slot reuse simply fails its generation check and {!cancel}
     returns [false] (no ABA).

   - Cancellation is a tombstone: the slot word flips to [Cancelled]
     and the queue entry is discarded when the queue delivers it.

   - The clock is kept as a native [int] of nanoseconds ({!Time.t} is
     a boxed [int64]; converting on entry and exit keeps Int64 boxing
     off the per-event path).

   - The [queue_depth] gauge is sampled every [depth_sample_mask + 1]
     schedule/cancel/fire transitions (and at the end of every {!run})
     through the gauge's flat float cell rather than boxed-float
     written on every one.

   The queue itself is either the 4-ary {!Heap} (default: best cache
   behaviour at modest populations) or the O(1)-amortized {!Calendar}
   queue (wins once the heap's O(log n) depth dominates, around a few
   hundred thousand live events).  [`Auto] starts on the heap and
   migrates once if the live population crosses {!migrate_threshold}.
   Both structures extract the exact [(key, seq)] minimum, so event
   order — and therefore every experiment table — is invariant under
   the queue choice and the migration point. *)

(* Arena slot word layout: bits 0-1 state, bit 2 daemon flag, bits 3+
   a 31-bit generation counter. *)
let st_pending = 1
let st_cancelled = 2
let state_mask = 3
let daemon_bit = 4
let gen_shift = 3
let slot_bits = 31
let slot_mask = (1 lsl slot_bits) - 1
let gen_mask = (1 lsl slot_bits) - 1
let max_slots = 1 lsl slot_bits

type event_id = int

type queue = Qheap of int Heap.t | Qcal of Calendar.t

type t = {
  mutable clock_ns : int;
  mutable q : queue;
  auto : bool;  (* [`Auto]: migrate heap -> calendar past the threshold *)
  mutable migrated : bool;
  mutable next_id : int;
  mutable live : int;
  mutable live_user : int;
  mutable depth_ops : int;
  (* Arena: a_word.(s) packs state/daemon/generation, a_fn.(s) is the
     callback.  [free] is a stack of recyclable slots; every slot is
     either live in the queue or on the stack, so the stack never
     overflows its arena-sized array. *)
  mutable a_word : int array;
  mutable a_fn : (unit -> unit) array;
  mutable free : int array;
  mutable free_top : int;
  trace : Trace.t;
  metrics : Metrics.t;
  m_fired : Metrics.counter;
  m_cancelled : Metrics.counter;
  m_queue_depth : Metrics.gauge;
  depth_cell : floatarray;  (* the gauge's cell, for unboxed writes *)
}

(* Power-of-two-minus-one: sample the gauge every 256 transitions. *)
let depth_sample_mask = 255

(* Past this many live events the heap walks >= 4 levels per
   operation and the calendar queue's O(1) bucket access wins. *)
let migrate_threshold = 32768

let dummy_fn () = ()

let create ?(queue = `Auto) ?(trace = Trace.default)
    ?(metrics = Metrics.default) () =
  let q, auto =
    match queue with
    | `Auto -> (Qheap (Heap.create ()), true)
    | `Heap -> (Qheap (Heap.create ()), false)
    | `Calendar -> (Qcal (Calendar.create ()), false)
  in
  let m_queue_depth =
    Metrics.gauge metrics ~sub:Subsystem.Sim
      ~help:"scheduled, uncancelled events (sampled)" "engine.queue_depth"
  in
  {
    clock_ns = 0;
    q;
    auto;
    migrated = false;
    next_id = 0;
    live = 0;
    live_user = 0;
    depth_ops = 0;
    a_word = [||];
    a_fn = [||];
    free = [||];
    free_top = 0;
    trace;
    metrics;
    m_fired =
      Metrics.counter metrics ~sub:Subsystem.Sim
        ~help:"callbacks executed by the event loop" "engine.events_fired";
    m_cancelled =
      Metrics.counter metrics ~sub:Subsystem.Sim
        ~help:"events cancelled before firing" "engine.events_cancelled";
    m_queue_depth;
    depth_cell = Metrics.cell m_queue_depth;
  }

let now t = Time.ns t.clock_ns
let trace t = t.trace
let metrics t = t.metrics

let sample_depth t =
  t.depth_ops <- t.depth_ops + 1;
  if t.depth_ops land depth_sample_mask = 0 then
    Float.Array.set t.depth_cell 0 (Float.of_int t.live)

let flush_depth t = Float.Array.set t.depth_cell 0 (Float.of_int t.live)

(* Public entry point for the sharded runner: {!sample_depth} writes the
   queue-depth gauge only every 256 transitions, so at a shard-epoch
   boundary the gauge can lag the true depth by up to 255 events.
   {!Shard} calls this at every barrier so monitors evaluating a window
   never read a stale gauge. *)
let flush_gauges t = flush_depth t

(* ------------------------------------------------------------------ *)
(* Arena. *)

(* Only called with an empty free stack, so nothing on it to copy. *)
let grow_arena t =
  let cap = Array.length t.a_word in
  let ncap = if cap = 0 then 16 else cap * 2 in
  if ncap > max_slots then invalid_arg "Engine: arena exceeds 2^31 slots";
  let nword = Array.make ncap 0 in
  let nfn = Array.make ncap dummy_fn in
  Array.blit t.a_word 0 nword 0 cap;
  Array.blit t.a_fn 0 nfn 0 cap;
  t.a_word <- nword;
  t.a_fn <- nfn;
  t.free <- Array.make ncap 0;
  t.free_top <- 0;
  (* Descending, so fresh slots are handed out in ascending order. *)
  for s = ncap - 1 downto cap do
    t.free.(t.free_top) <- s;
    t.free_top <- t.free_top + 1
  done

let alloc_slot t =
  if t.free_top = 0 then grow_arena t;
  t.free_top <- t.free_top - 1;
  t.free.(t.free_top)

(* Bump the generation (invalidating every outstanding handle to this
   slot), clear state and daemon bits, drop the callback reference. *)
let free_slot t slot w =
  t.a_word.(slot) <- (((w asr gen_shift) + 1) land gen_mask) lsl gen_shift;
  t.a_fn.(slot) <- dummy_fn;
  t.free.(t.free_top) <- slot;
  t.free_top <- t.free_top + 1

(* ------------------------------------------------------------------ *)
(* Queue dispatch. *)

let q_push t ~key ~seq v =
  match t.q with
  | Qheap h -> Heap.push_ns h ~key ~seq v
  | Qcal c -> Calendar.push_ns c ~key ~seq v

let q_min_key t =
  match t.q with
  | Qheap h -> Heap.min_key_ns h
  | Qcal c -> Calendar.min_key_ns c

let q_pop_min t =
  match t.q with Qheap h -> Heap.pop_min h | Qcal c -> Calendar.pop_min c

(* One-way heap -> calendar migration: drain in [(key, seq)] order and
   re-insert, so the extraction order — and every table downstream —
   is unchanged by where the migration lands. *)
let maybe_migrate t =
  if t.auto && (not t.migrated) && t.live > migrate_threshold then begin
    match t.q with
    | Qcal _ -> t.migrated <- true
    | Qheap h ->
        let cal = Calendar.create () in
        while not (Heap.is_empty h) do
          let k = Heap.min_key_ns h and s = Heap.min_seq_ns h in
          let v = Heap.pop_min h in
          Calendar.push_ns cal ~key:k ~seq:s v
        done;
        t.q <- Qcal cal;
        t.migrated <- true
  end

(* ------------------------------------------------------------------ *)
(* Scheduling. *)

let schedule_ns ~daemon t ~at_ns f =
  if at_ns < t.clock_ns then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is before now (%a)" Time.pp
         (Time.ns at_ns) Time.pp (Time.ns t.clock_ns));
  let slot = alloc_slot t in
  let w = t.a_word.(slot) in
  (* [w] is a freed word: state 0, daemon clear, generation intact. *)
  t.a_word.(slot) <-
    w lor st_pending lor (if daemon then daemon_bit else 0);
  t.a_fn.(slot) <- f;
  let seq = t.next_id in
  t.next_id <- t.next_id + 1;
  q_push t ~key:at_ns ~seq slot;
  t.live <- t.live + 1;
  if not daemon then t.live_user <- t.live_user + 1;
  maybe_migrate t;
  sample_depth t;
  ((w asr gen_shift) lsl slot_bits) lor slot

let schedule_at ?(daemon = false) t ~at f =
  let at_ns = Time.to_ns at in
  if Time.ns at_ns <> at then
    invalid_arg "Engine.schedule_at: time exceeds native int range";
  schedule_ns ~daemon t ~at_ns f

let schedule ?(daemon = false) t ~delay f =
  schedule_ns ~daemon t ~at_ns:(t.clock_ns + Time.to_ns delay) f

let cancel t h =
  let slot = h land slot_mask in
  if slot >= Array.length t.a_word then false
  else begin
    let w = t.a_word.(slot) in
    if w land state_mask = st_pending && w asr gen_shift = h asr slot_bits
    then begin
      t.a_word.(slot) <- (w land lnot state_mask) lor st_cancelled;
      Metrics.incr t.m_cancelled;
      t.live <- t.live - 1;
      if w land daemon_bit = 0 then t.live_user <- t.live_user - 1;
      sample_depth t;
      true
    end
    else false
  end

let pending t = t.live
let pending_user t = t.live_user

let next_at_ns t = q_min_key t

let next_at t =
  let k = q_min_key t in
  if k = max_int then None else Some (Time.ns k)

(* ------------------------------------------------------------------ *)
(* Execution. *)

(* Deliver the queue minimum: advance the clock, recycle the arena
   slot, then run the callback unless the entry was a tombstone.  The
   slot is freed *before* the callback runs, so a self-rescheduling
   event reuses its own slot and a long steady-state run touches a
   bounded arena; the callback itself was read out first.  Returns
   [true] when the callback actually ran. *)
let exec_min t =
  let at = q_min_key t in
  let slot = q_pop_min t in
  t.clock_ns <- at;
  let w = t.a_word.(slot) in
  let fn = t.a_fn.(slot) in
  free_slot t slot w;
  if w land state_mask = st_pending then begin
    t.live <- t.live - 1;
    if w land daemon_bit = 0 then t.live_user <- t.live_user - 1;
    Metrics.incr t.m_fired;
    sample_depth t;
    fn ();
    true
  end
  else false

let step t =
  if q_min_key t = max_int then false
  else begin
    ignore (exec_min t);
    true
  end

(* The loop proper, over native ints only ([has_until] instead of an
   option, [max_int] as "no budget") so {!Shard}'s epoch loop can run
   it without boxing anything per epoch. *)
let run_ns t ~until_ns ~has_until ~max_ev =
  let fired = ref 0 in
  let continue = ref true in
  while !continue do
    if !fired >= max_ev then continue := false
      (* Without a time bound, daemon events (periodic managers and
         the like) do not keep the run alive: stop once only daemons
         remain. *)
    else if (not has_until) && t.live_user = 0 then continue := false
    else begin
      let at = q_min_key t in
      if at = max_int then continue := false
      else if has_until && at > until_ns then continue := false
      else if exec_min t then incr fired
    end
  done;
  flush_depth t;
  (* Advance the clock to [until] only when the run stopped for lack
     of earlier events, not when it was cut short by [max_ev]. *)
  if has_until && t.clock_ns < until_ns then begin
    let nk = q_min_key t in
    if nk > until_ns then t.clock_ns <- until_ns
  end

let run ?until ?max_events t =
  let has_until = until <> None in
  let until_ns = match until with Some u -> Time.to_ns u | None -> max_int in
  let max_ev = match max_events with Some m -> m | None -> max_int in
  run_ns t ~until_ns ~has_until ~max_ev

let run_until_ns t until_ns =
  run_ns t ~until_ns ~has_until:true ~max_ev:max_int

let every ?daemon t ~period ?start f =
  if Time.(period <= Time.zero) then
    invalid_arg "Engine.every: period must be positive";
  let first = match start with Some s -> s | None -> Time.add (now t) period in
  let rec tick () =
    if f () then ignore (schedule ?daemon t ~delay:period tick)
  in
  ignore (schedule_at ?daemon t ~at:first tick)
