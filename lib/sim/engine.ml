(* The event loop is the innermost loop of every experiment, so the
   per-event path is kept free of hashing and boxing:

   - Cancellation is a tombstone flag carried on the event record
     itself.  The old design kept a [cancelled : (id, unit) Hashtbl.t]
     and a [daemons : (id, unit) Hashtbl.t], costing up to three probes
     per event (cancel, fire, forget); now cancel/fire/forget are plain
     field reads and writes, and a cancelled event is simply skipped
     when the heap delivers it.

   - The [queue_depth] gauge is sampled every [depth_sample_mask + 1]
     schedule/forget transitions (and at the end of every [run]) rather
     than written — boxing a float — on every one. *)

type state = Pending | Cancelled | Fired

type event = {
  ev_seq : int;
  ev_daemon : bool;
  mutable ev_state : state;
  ev_fn : unit -> unit;
}

type event_id = event

type t = {
  mutable clock : Time.t;
  heap : event Heap.t;
  mutable next_id : int;
  mutable live : int;
  mutable live_user : int;
  mutable depth_ops : int;
  trace : Trace.t;
  metrics : Metrics.t;
  m_fired : Metrics.counter;
  m_cancelled : Metrics.counter;
  m_queue_depth : Metrics.gauge;
}

(* Power-of-two-minus-one: sample the gauge every 256 transitions. *)
let depth_sample_mask = 255

let create ?(trace = Trace.default) ?(metrics = Metrics.default) () =
  {
    clock = Time.zero;
    heap = Heap.create ();
    next_id = 0;
    live = 0;
    live_user = 0;
    depth_ops = 0;
    trace;
    metrics;
    m_fired =
      Metrics.counter metrics ~sub:Subsystem.Sim
        ~help:"callbacks executed by the event loop" "engine.events_fired";
    m_cancelled =
      Metrics.counter metrics ~sub:Subsystem.Sim
        ~help:"events cancelled before firing" "engine.events_cancelled";
    m_queue_depth =
      Metrics.gauge metrics ~sub:Subsystem.Sim
        ~help:"scheduled, uncancelled events (sampled)" "engine.queue_depth";
  }

let now t = t.clock
let trace t = t.trace
let metrics t = t.metrics

let sample_depth t =
  t.depth_ops <- t.depth_ops + 1;
  if t.depth_ops land depth_sample_mask = 0 then
    Metrics.set t.m_queue_depth (Float.of_int t.live)

let schedule_at ?(daemon = false) t ~at f =
  if Time.(at < t.clock) then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is before now (%a)" Time.pp at
         Time.pp t.clock);
  let seq = t.next_id in
  t.next_id <- t.next_id + 1;
  let ev = { ev_seq = seq; ev_daemon = daemon; ev_state = Pending; ev_fn = f } in
  Heap.push t.heap ~key:at ~seq ev;
  t.live <- t.live + 1;
  if not daemon then t.live_user <- t.live_user + 1;
  sample_depth t;
  ev

let schedule ?daemon t ~delay f =
  schedule_at ?daemon t ~at:(Time.add t.clock delay) f

let forget t ev =
  t.live <- t.live - 1;
  if not ev.ev_daemon then t.live_user <- t.live_user - 1;
  sample_depth t

let cancel t ev =
  match ev.ev_state with
  | Pending ->
      ev.ev_state <- Cancelled;
      Metrics.incr t.m_cancelled;
      forget t ev;
      true
  | Cancelled | Fired -> false

let pending t = t.live
let pending_user t = t.live_user

let next_at t =
  match Heap.peek t.heap with None -> None | Some (at, _, _) -> Some at

(* Returns [true] when the event actually ran (was not a tombstone). *)
let fire t at ev =
  t.clock <- at;
  match ev.ev_state with
  | Cancelled -> false
  | Fired -> assert false
  | Pending ->
      ev.ev_state <- Fired;
      forget t ev;
      Metrics.incr t.m_fired;
      ev.ev_fn ();
      true

let flush_depth t = Metrics.set t.m_queue_depth (Float.of_int t.live)

let step t =
  match Heap.pop t.heap with
  | None -> false
  | Some (at, _, ev) ->
      ignore (fire t at ev);
      flush_depth t;
      true

let run ?until ?max_events t =
  let fired = ref 0 in
  let budget_ok () =
    match max_events with None -> true | Some m -> !fired < m
  in
  (* Without a time bound, daemon events (periodic managers and the
     like) do not keep the run alive: stop once only daemons remain. *)
  let worth_continuing () =
    match until with None -> t.live_user > 0 | Some _ -> true
  in
  let continue = ref true in
  while !continue && budget_ok () && worth_continuing () do
    match Heap.peek t.heap with
    | None -> continue := false
    | Some (at, _, _) -> begin
        match until with
        | Some u when Time.(at > u) -> continue := false
        | Some _ | None ->
            (match Heap.pop t.heap with
            | Some (at, _, ev) -> if fire t at ev then incr fired
            | None -> assert false)
      end
  done;
  flush_depth t;
  (* Advance the clock to [until] only when the run stopped for lack of
     earlier events, not when it was cut short by [max_events]. *)
  match until with
  | Some u when Time.(t.clock < u) -> begin
      match Heap.peek t.heap with
      | Some (at, _, _) when Time.(at <= u) -> ()
      | Some _ | None -> t.clock <- u
    end
  | Some _ | None -> ()

let every ?daemon t ~period ?start f =
  let first = match start with Some s -> s | None -> Time.add (now t) period in
  let rec tick () =
    if f () then ignore (schedule ?daemon t ~delay:period tick)
  in
  ignore (schedule_at ?daemon t ~at:first tick)
