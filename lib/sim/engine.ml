type event_id = int

type t = {
  mutable clock : Time.t;
  heap : (event_id * (unit -> unit)) Heap.t;
  cancelled : (event_id, unit) Hashtbl.t;
  daemons : (event_id, unit) Hashtbl.t;
  mutable next_id : int;
  mutable live : int;
  mutable live_user : int;
  trace : Trace.t;
  metrics : Metrics.t;
  m_fired : Metrics.counter;
  m_cancelled : Metrics.counter;
  m_queue_depth : Metrics.gauge;
}

let create ?(trace = Trace.default) ?(metrics = Metrics.default) () =
  {
    clock = Time.zero;
    heap = Heap.create ();
    cancelled = Hashtbl.create 64;
    daemons = Hashtbl.create 16;
    next_id = 0;
    live = 0;
    live_user = 0;
    trace;
    metrics;
    m_fired =
      Metrics.counter metrics ~sub:Subsystem.Sim
        ~help:"callbacks executed by the event loop" "engine.events_fired";
    m_cancelled =
      Metrics.counter metrics ~sub:Subsystem.Sim
        ~help:"events cancelled before firing" "engine.events_cancelled";
    m_queue_depth =
      Metrics.gauge metrics ~sub:Subsystem.Sim
        ~help:"scheduled, uncancelled events" "engine.queue_depth";
  }

let now t = t.clock
let trace t = t.trace
let metrics t = t.metrics

let schedule_at ?(daemon = false) t ~at f =
  if Time.(at < t.clock) then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is before now (%a)" Time.pp at
         Time.pp t.clock);
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  Heap.push t.heap ~key:at ~seq:id (id, f);
  t.live <- t.live + 1;
  Metrics.set t.m_queue_depth (Float.of_int t.live);
  if daemon then Hashtbl.replace t.daemons id ()
  else t.live_user <- t.live_user + 1;
  id

let schedule ?daemon t ~delay f =
  schedule_at ?daemon t ~at:(Time.add t.clock delay) f

let forget t id =
  t.live <- t.live - 1;
  Metrics.set t.m_queue_depth (Float.of_int t.live);
  if Hashtbl.mem t.daemons id then Hashtbl.remove t.daemons id
  else t.live_user <- t.live_user - 1

let cancel t id =
  if not (Hashtbl.mem t.cancelled id) then begin
    Hashtbl.add t.cancelled id ();
    Metrics.incr t.m_cancelled;
    forget t id
  end

let pending t = t.live

let fire t at id f =
  t.clock <- at;
  if Hashtbl.mem t.cancelled id then Hashtbl.remove t.cancelled id
  else begin
    forget t id;
    Metrics.incr t.m_fired;
    f ()
  end

let step t =
  match Heap.pop t.heap with
  | None -> false
  | Some (at, _, (id, f)) ->
      fire t at id f;
      true

let run ?until ?max_events t =
  let fired = ref 0 in
  let budget_ok () =
    match max_events with None -> true | Some m -> !fired < m
  in
  (* Without a time bound, daemon events (periodic managers and the
     like) do not keep the run alive: stop once only daemons remain. *)
  let worth_continuing () =
    match until with None -> t.live_user > 0 | Some _ -> true
  in
  let continue = ref true in
  while !continue && budget_ok () && worth_continuing () do
    match Heap.peek t.heap with
    | None -> continue := false
    | Some (at, _, _) -> begin
        match until with
        | Some u when Time.(at > u) -> continue := false
        | Some _ | None ->
            (match Heap.pop t.heap with
            | Some (at, _, (id, f)) ->
                if not (Hashtbl.mem t.cancelled id) then incr fired;
                fire t at id f
            | None -> assert false)
      end
  done;
  (* Advance the clock to [until] only when the run stopped for lack of
     earlier events, not when it was cut short by [max_events]. *)
  match until with
  | Some u when Time.(t.clock < u) -> begin
      match Heap.peek t.heap with
      | Some (at, _, _) when Time.(at <= u) -> ()
      | Some _ | None -> t.clock <- u
    end
  | Some _ | None -> ()

let every ?daemon t ~period ?start f =
  let first = match start with Some s -> s | None -> Time.add (now t) period in
  let rec tick () =
    if f () then ignore (schedule ?daemon t ~delay:period tick)
  in
  ignore (schedule_at ?daemon t ~at:first tick)
