(** Calendar queue keyed by [(int, int)]: O(1) amortized push and
    pop-min for massive event populations.

    The primary key is a timestamp in integer nanoseconds; the
    secondary key is an insertion sequence number, so entries with
    equal keys pop in FIFO order — the same total order as
    {!Heap}, which the engine's differential property test enforces.
    Values are plain [int]s (the engine stores arena slot indexes).

    Entries live in a pooled free list of parallel [int array]s and
    buckets are chains through the pool, so steady-state push/pop
    performs no allocation.  Geometry (bucket count and width) is a
    pure function of the queue contents, so behaviour replays
    identically across runs.

    Use {!Heap} for modest populations: a calendar queue's advantage
    only shows once the heap's O(log n) depth dominates, and a flood
    of same-key entries degrades a calendar bucket to a linear
    scan. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val push_ns : t -> key:int -> seq:int -> int -> unit
(** [push_ns t ~key ~seq v] inserts [v].  Raises [Invalid_argument]
    when [key] is negative or beyond 2^61 (~73 years of simulated
    nanoseconds). *)

val min_key_ns : t -> int
(** Key of the minimum entry, or [max_int] when empty.  Never
    allocates. *)

val min_seq_ns : t -> int
(** Sequence number of the minimum entry, or [max_int] when empty. *)

val pop_min : t -> int
(** Removes the minimum entry under [(key, seq)] order and returns its
    value.  Raises [Invalid_argument] when empty.  Never allocates in
    steady state. *)

val pop_ns : t -> (int * int * int) option
(** [(key, seq, value)] of the minimum, removed — the convenience form
    used by tests; allocates the returned tuple. *)

val clear : t -> unit
