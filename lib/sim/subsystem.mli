(** Subsystem tags shared by the trace sink and the metrics registry.

    Every observability record names the layer it came from, so traces
    can be filtered per subsystem and metric names stay collision-free
    across libraries. *)

type t = Atm | Nemesis | Pfs | Rpc | Naming | Sim | Other of string

val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val lane : t -> int
(** Stable small integer per subsystem, used as the [tid] lane in
    Chrome trace exports so each layer renders as its own track. *)
