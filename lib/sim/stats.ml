module Summary = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; total = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. Float.of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.total <- t.total +. x

  let clear t =
    t.n <- 0;
    t.mean <- 0.0;
    t.m2 <- 0.0;
    t.min <- infinity;
    t.max <- neg_infinity;
    t.total <- 0.0

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. Float.of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
  let total t = t.total

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. Float.of_int b.n /. Float.of_int n) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. Float.of_int a.n *. Float.of_int b.n /. Float.of_int n)
      in
      {
        n;
        mean;
        m2;
        min = Stdlib.min a.min b.min;
        max = Stdlib.max a.max b.max;
        total = a.total +. b.total;
      }
    end

  let pp fmt t =
    Format.fprintf fmt "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.n t.mean
      (stddev t) t.min t.max
end

module Samples = struct
  type t = {
    mutable data : float array;
    mutable len : int;
    mutable sorted : bool;
  }

  let create () = { data = [||]; len = 0; sorted = false }

  let add t x =
    if t.len = Array.length t.data then begin
      let ncap = if t.len = 0 then 64 else t.len * 2 in
      let narr = Array.make ncap 0.0 in
      Array.blit t.data 0 narr 0 t.len;
      t.data <- narr
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1;
    t.sorted <- false

  let count t = t.len

  let clear t =
    t.len <- 0;
    t.sorted <- false

  let ensure_sorted t =
    if not t.sorted then begin
      let sub = Array.sub t.data 0 t.len in
      Array.sort Float.compare sub;
      Array.blit sub 0 t.data 0 t.len;
      t.sorted <- true
    end

  let percentile t p =
    if t.len = 0 then invalid_arg "Samples.percentile: empty";
    ensure_sorted t;
    let rank = p /. 100.0 *. Float.of_int (t.len - 1) in
    let lo = Float.to_int (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (t.len - 1) in
    let frac = rank -. Float.of_int lo in
    t.data.(lo) +. (frac *. (t.data.(hi) -. t.data.(lo)))

  (* Raises like [min]/[max]/[percentile] do: the old silent-0.0
     return let an empty sample set masquerade as a measured zero
     (e.g. a zero RPC round-trip when no reply ever arrived). *)
  let mean t =
    if t.len = 0 then invalid_arg "Samples.mean: empty";
    let s = ref 0.0 in
    for i = 0 to t.len - 1 do
      s := !s +. t.data.(i)
    done;
    !s /. Float.of_int t.len

  let min t =
    if t.len = 0 then invalid_arg "Samples.min: empty";
    ensure_sorted t;
    t.data.(0)

  let max t =
    if t.len = 0 then invalid_arg "Samples.max: empty";
    ensure_sorted t;
    t.data.(t.len - 1)

  let to_array t = Array.sub t.data 0 t.len
end

module Reservoir = struct
  (* Algorithm R over a fixed-size buffer.  The first [capacity]
     observations are stored verbatim (so small distributions keep
     exact percentiles); from then on observation [i] replaces a
     uniformly chosen slot with probability [capacity / i].  The
     replacement stream comes from an explicit SplitMix64 generator, so
     the retained sample — and therefore every percentile snapshot — is
     a pure function of (seed, observation sequence). *)
  type t = {
    data : float array;
    scratch : float array;
    mutable stored : int;
    mutable seen : int;
    mutable sorted : bool;
    mutable rng : Rng.t;
    seed : int64;
  }

  let default_capacity = 1024

  (* "reservo" in ASCII — an arbitrary fixed default seed. *)
  let create ?(capacity = default_capacity) ?(seed = 0x7265736572766FL) () =
    if capacity <= 0 then invalid_arg "Reservoir.create: capacity must be > 0";
    {
      data = Array.make capacity 0.0;
      scratch = Array.make capacity 0.0;
      stored = 0;
      seen = 0;
      sorted = false;
      rng = Rng.create ~seed ();
      seed;
    }

  let capacity t = Array.length t.data

  let add t x =
    t.seen <- t.seen + 1;
    let cap = Array.length t.data in
    if t.stored < cap then begin
      t.data.(t.stored) <- x;
      t.stored <- t.stored + 1;
      t.sorted <- false
    end
    else begin
      let j = Rng.int t.rng t.seen in
      if j < cap then begin
        t.data.(j) <- x;
        t.sorted <- false
      end
    end

  let count t = t.seen
  let stored t = t.stored

  let clear t =
    t.stored <- 0;
    t.seen <- 0;
    t.sorted <- false;
    (* Restart the replacement stream too, so a cleared reservoir
       replays exactly like a fresh one. *)
    t.rng <- Rng.create ~seed:t.seed ()

  (* Sorting happens in a scratch copy: [data] must keep insertion
     order, because Algorithm R replaces by slot index. *)
  let sorted_view t =
    if not t.sorted then begin
      Array.blit t.data 0 t.scratch 0 t.stored;
      let sub = Array.sub t.scratch 0 t.stored in
      Array.sort Float.compare sub;
      Array.blit sub 0 t.scratch 0 t.stored;
      t.sorted <- true
    end;
    t.scratch

  let percentile t p =
    if t.stored = 0 then invalid_arg "Reservoir.percentile: empty";
    let view = sorted_view t in
    let rank = p /. 100.0 *. Float.of_int (t.stored - 1) in
    let lo = Float.to_int (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (t.stored - 1) in
    let frac = rank -. Float.of_int lo in
    view.(lo) +. (frac *. (view.(hi) -. view.(lo)))

  let to_array t = Array.sub t.data 0 t.stored
end

module Histogram = struct
  type t = {
    width : float;
    counts : int array;
    mutable n : int;
    mutable oor : int;
  }

  let create ~bucket_width ~buckets =
    assert (bucket_width > 0.0 && buckets > 0);
    { width = bucket_width; counts = Array.make buckets 0; n = 0; oor = 0 }

  (* NaN and negative samples used to land silently in bucket 0
     ([Float.to_int nan = 0], negatives clamped up), polluting the
     lowest bucket; they are tallied separately instead.  Values beyond
     the top bucket are still clamped into it: they are at least
     ordered correctly. *)
  let add t x =
    if Float.is_nan x || x < 0.0 then t.oor <- t.oor + 1
    else begin
      let b = Float.to_int (x /. t.width) in
      let b = Stdlib.min b (Array.length t.counts - 1) in
      t.counts.(b) <- t.counts.(b) + 1;
      t.n <- t.n + 1
    end

  let count t = t.n
  let out_of_range t = t.oor
  let bucket_count t i = t.counts.(i)

  let pp fmt t =
    Format.fprintf fmt "@[<v>";
    Array.iteri
      (fun i c ->
        if c > 0 then
          Format.fprintf fmt "[%8.1f,%8.1f) %d@,"
            (t.width *. Float.of_int i)
            (t.width *. Float.of_int (i + 1))
            c)
      t.counts;
    if t.oor > 0 then Format.fprintf fmt "out-of-range (NaN/negative) %d@," t.oor;
    Format.fprintf fmt "@]"
end

module Counter = struct
  type t = (string, int ref) Hashtbl.t

  let create () = Hashtbl.create 16

  let incr ?(by = 1) t name =
    match Hashtbl.find_opt t name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add t name (ref by)

  let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

  let to_list t =
    Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end
