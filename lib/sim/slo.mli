(** Declarative service-level objectives.

    An SLO names a signal, the side of a threshold it must stay on, and
    the window geometry used to judge it online: the signal is
    accumulated into tumbling sub-windows of length [window], and two
    sliding aggregates are maintained over them — a {e fast} aggregate
    spanning the last [fast_windows] sub-windows that decides when the
    objective is in breach, and a {e slow} aggregate spanning the last
    [slow_windows] that decides when a firing alert has genuinely
    recovered (SRE-style two-window burn-rate alerting: the short
    window reacts quickly, the long window keeps a resolved alert from
    re-firing on noise).

    A spec is pure data; binding it to a live signal (a counter rate, a
    gauge level, a windowed latency percentile) happens in
    {!Monitor.register}. *)

type comparator =
  | Below  (** healthy while the signal stays at or below the threshold *)
  | Above  (** healthy while the signal stays at or above the threshold *)

type t = private {
  name : string;
  sub : Subsystem.t;
  help : string;
  unit_ : string;  (** render label for values, e.g. ["us"] or ["/s"] *)
  comparator : comparator;
  threshold : float;
  window : Time.t;  (** tumbling sub-window length *)
  fast_windows : int;  (** sub-windows in the firing aggregate *)
  slow_windows : int;  (** sub-windows in the resolving aggregate *)
  fire_after : int;  (** consecutive breaching rolls before firing *)
  resolve_after : int;  (** consecutive recovered rolls before resolving *)
  hysteresis : float;  (** resolve threshold = hysteresis * threshold *)
}

val make :
  ?help:string ->
  ?unit_:string ->
  ?comparator:comparator ->
  ?window:Time.t ->
  ?fast_windows:int ->
  ?slow_windows:int ->
  ?fire_after:int ->
  ?resolve_after:int ->
  ?hysteresis:float ->
  sub:Subsystem.t ->
  threshold:float ->
  string ->
  t
(** Defaults: [comparator = Below], [window = 100ms],
    [fast_windows = 1], [slow_windows = 5], [fire_after = 2],
    [resolve_after = 2], [hysteresis = 1.0].

    Raises [Invalid_argument] on an empty name, non-positive window,
    [slow_windows < fast_windows], non-positive counts, or a
    hysteresis that would put the resolve threshold on the unhealthy
    side of the fire threshold ([> 1] for [Below], [< 1] for
    [Above]). *)

val resolve_threshold : t -> float
(** [hysteresis * threshold] — what the slow aggregate must reach
    before a firing alert may resolve. *)

val violates : t -> float -> bool
(** Strict breach test for the fast aggregate: a value exactly at the
    threshold is healthy, so a signal riding the boundary never
    fires. *)

val recovers : t -> float -> bool
(** Recovery test for the slow aggregate, against
    {!resolve_threshold} (inclusive). *)

val comparator_string : comparator -> string
