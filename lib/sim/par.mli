(** Domain-parallel execution shim.

    On OCaml 5 this wraps [Domain]: {!run} spawns real domains and
    {!available} is [true].  On OCaml 4.14 (still in the CI matrix) a
    sequential fallback is selected at build time (see the rules in
    [lib/sim/dune]): {!available} is [false], {!run} with one worker
    executes inline, and asking for more than one worker is an error —
    callers such as {!Shard.run} clamp their worker count with
    {!available} so the same code builds and runs everywhere.

    Everything here is deliberately oblivious to simulation state: it
    only knows how to run workers and make them meet at a barrier.
    Determinism is the caller's job (see {!Shard}). *)

val available : bool
(** [true] when real domains can be spawned (OCaml >= 5). *)

val recommended_workers : unit -> int
(** [Domain.recommended_domain_count ()] on OCaml 5; [1] on 4.14. *)

val run : workers:int -> (worker:int -> sync:(unit -> unit) -> unit) -> unit
(** [run ~workers f] executes [f ~worker ~sync] once per worker, with
    [worker] in [0 .. workers-1]; worker 0 runs on the calling domain.
    [sync] is a reusable barrier shared by every worker: each call
    blocks until all [workers] have called it the same number of times.
    Returns once every worker has finished.  If any worker raises, the
    barrier is poisoned (blocked workers are released by a [Barrier_poisoned]
    exception) and the first worker's exception is re-raised after all
    domains are joined.

    Raises [Invalid_argument] if [workers < 1], or if [workers > 1] and
    [available] is [false]. *)

exception Barrier_poisoned
(** Raised from [sync] in surviving workers after another worker died. *)

val map : workers:int -> (unit -> 'a) array -> 'a array
(** [map ~workers tasks] runs every task and returns their results in
    input order.  Task [i] runs on worker [i mod workers], so the
    assignment — and, for tasks free of shared state, the result — is
    independent of the worker count.  Exceptions are re-raised on the
    caller, lowest task index first.  [workers] is clamped to
    [1] when {!available} is [false]. *)
