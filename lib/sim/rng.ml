type zipf_cache = { zn : int; zs : float; cdf : float array }

(* A small MRU set of CDF caches rather than a single slot: a workload
   that interleaves draws from two (n, s) pairs — the flash-crowd
   generator mixes pre- and post-flip distributions — would otherwise
   rebuild an O(n) table on every call. *)
let zipf_cache_slots = 8

type t = { mutable state : int64; mutable zipf : zipf_cache list }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ?(seed = 0x5DEECE66DL) () = { state = seed; zipf = [] }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = int64 t in
  { state = mix64 seed; zipf = [] }

let float t =
  (* 53 random bits scaled to [0,1) *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (int64 t) land max_int in
  r mod bound

let bool t = Int64.logand (int64 t) 1L = 1L
let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let exponential t ~mean =
  let u = 1.0 -. float t in
  -.mean *. log u

let normal t ~mu ~sigma =
  let u1 = 1.0 -. float t and u2 = float t in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mu +. (sigma *. z)

let lognormal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let pareto t ~shape ~scale =
  let u = 1.0 -. float t in
  scale /. (u ** (1.0 /. shape))

let zipf_cdf n s =
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 1 to n do
    acc := !acc +. (1.0 /. (Float.of_int k ** s));
    cdf.(k - 1) <- !acc
  done;
  let total = !acc in
  Array.map (fun x -> x /. total) cdf

(* Fetch (or build) the cache for (n, s) and move it to the front of
   the MRU list; the list is bounded at [zipf_cache_slots].  The cache
   never affects drawn values — only whether the CDF is rebuilt. *)
let zipf_lookup t ~n ~s =
  match t.zipf with
  | c :: _ when c.zn = n && c.zs = s -> c
  | caches -> (
      match List.find_opt (fun c -> c.zn = n && c.zs = s) caches with
      | Some c ->
          t.zipf <-
            c :: List.filter (fun c' -> not (c' == c)) caches;
          c
      | None ->
          let c = { zn = n; zs = s; cdf = zipf_cdf n s } in
          let rec take k = function
            | [] -> []
            | _ when k = 0 -> []
            | x :: rest -> x :: take (k - 1) rest
          in
          t.zipf <- c :: take (zipf_cache_slots - 1) caches;
          c)

let zipf t ~n ~s =
  let cache = zipf_lookup t ~n ~s in
  let u = float t in
  (* binary search for the first index with cdf >= u *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cache.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo + 1

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
