(* Conservative parallel discrete-event simulation over engine shards.

   Each shard owns a private {!Engine.t} (its own heap, clock, trace and
   metrics), and shards exchange timestamped callbacks through
   per-(src,dst) {!Mailbox.t}s.  Synchronisation is barrier-epoch
   conservative PDES: with [L] the minimum cross-shard latency
   (lookahead), any message created by an event at time [t] carries a
   timestamp [>= t + L], so once every shard's earliest queue entry is
   known to be [>= t_min], every event strictly below [t_min + L] can be
   executed without hearing from any other shard.  Each epoch therefore

     1. computes [horizon = t_min + L] from state published at the last
        barrier (identically on every worker — no coordinator),
     2. runs every shard's engine up to [horizon - 1ns] (an event
        scheduled exactly at the horizon must wait for the next epoch:
        a message can still arrive at that instant),
     3. meets at a barrier, then drains each shard's inbound mailboxes,
        sorting messages by [(timestamp, source shard, sequence)] so
        delivery order — and hence the destination engine's own
        scheduling order — is a pure function of the simulation,
     4. publishes each shard's earliest-event time and meets at the
        second barrier.

   Shards are distributed over domains statically ([shard mod workers]),
   and nothing in the epoch protocol depends on the worker count, so
   results are byte-identical at --domains 1, 2 and 4 — the property CI
   enforces.  Worker 0 is the calling domain; with one worker (or on
   OCaml 4.14, where {!Par.available} is false) the same epoch loop runs
   sequentially.

   Mailboxes are plain SPSC rings: pushes happen strictly before the
   epoch barrier and drains strictly after it, and the barrier publishes
   the writes, so no per-message synchronisation is needed. *)

type msg = { msg_at : int; msg_seq : int; msg_fn : unit -> unit }

type t = {
  engines : Engine.t array;
  lookahead : Time.t;
  lookahead_ns : int;
  boxes : msg Mailbox.t array array;  (* boxes.(src).(dst) *)
  seqs : int array array;  (* per-(src,dst) push counters, producer-owned *)
  (* Published per-shard state: written only by the owning worker in the
     drain phase, read by every worker after the barrier. *)
  next_at_ns : int array;  (* max_int when the queue is empty *)
  user_live : int array;
  delivered : int array;  (* cross-shard messages scheduled, per dst *)
  mutable epochs : int;
  mutable running : bool;
}

let no_event = max_int

let make ~lookahead engines =
  if Array.length engines = 0 then invalid_arg "Shard: no shards";
  if Time.(lookahead <= Time.zero) then
    invalid_arg "Shard: lookahead must be positive";
  let n = Array.length engines in
  {
    engines;
    lookahead;
    lookahead_ns = Time.to_ns lookahead;
    boxes =
      Array.init n (fun _ -> Array.init n (fun _ -> Mailbox.create ()));
    seqs = Array.init n (fun _ -> Array.make n 0);
    next_at_ns = Array.make n no_event;
    user_live = Array.make n 0;
    delivered = Array.make n 0;
    epochs = 0;
    running = false;
  }

let create ?(lookahead = Time.us 1) ~shards () =
  if shards < 1 then invalid_arg "Shard.create: shards < 1";
  let engines =
    Array.init shards (fun _ ->
        Engine.create
          ~trace:(Trace.create ~enabled:false ())
          ~metrics:(Metrics.create ()) ())
  in
  make ~lookahead engines

let of_engines ?(lookahead = Time.us 1) engines =
  make ~lookahead (Array.copy engines)

let shards t = Array.length t.engines
let lookahead t = t.lookahead
let engine t s = t.engines.(s)
let epochs t = t.epochs

let messages t = Array.fold_left ( + ) 0 t.delivered

let overflows t =
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun acc box -> acc + Mailbox.overflows box) acc row)
    0 t.boxes

let post t ~src ~dst ~at fn =
  let n = Array.length t.engines in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Shard.post: shard out of range";
  let now = Engine.now t.engines.(src) in
  if Time.(at < Time.add now t.lookahead) then
    invalid_arg
      (Format.asprintf
         "Shard.post: %a is under the lookahead horizon (now %a + %a)" Time.pp
         at Time.pp now Time.pp t.lookahead);
  let seq = t.seqs.(src).(dst) in
  t.seqs.(src).(dst) <- seq + 1;
  Mailbox.push t.boxes.(src).(dst) { msg_at = Time.to_ns at; msg_seq = seq; msg_fn = fn }

(* Drain every inbox of shard [dst] and schedule the messages in
   deterministic (timestamp, source, sequence) order.  Runs on the
   worker that owns [dst], strictly after the epoch barrier. *)
let drain_nonempty t dst =
  let n = Array.length t.engines in
  let acc = ref [] in
  for src = 0 to n - 1 do
    let box = t.boxes.(src).(dst) in
    let rec take () =
      match Mailbox.pop box with
      | Some m ->
          acc := (m.msg_at, src, m.msg_seq, m.msg_fn) :: !acc;
          take ()
      | None -> ()
    in
    take ()
  done;
  let msgs =
    List.sort
      (fun (a1, s1, q1, _) (a2, s2, q2, _) ->
        if a1 <> a2 then compare a1 a2
        else if s1 <> s2 then compare s1 s2
        else compare q1 q2)
      !acc
  in
  List.iter
    (fun (at_ns, _, _, fn) ->
      ignore (Engine.schedule_at t.engines.(dst) ~at:(Time.ns at_ns) fn))
    msgs;
  t.delivered.(dst) <- t.delivered.(dst) + List.length msgs

(* Most epochs deliver nothing to most shards; skip the sort-and-
   schedule machinery (and its allocations) unless some inbox actually
   holds a message. *)
let drain t dst =
  let n = Array.length t.engines in
  let rec any_pending src =
    src < n
    && ((not (Mailbox.is_empty t.boxes.(src).(dst))) || any_pending (src + 1))
  in
  if any_pending 0 then drain_nonempty t dst

let publish t s =
  (* The engine samples its queue-depth gauge every 256 transitions;
     flush it here so nothing observes a stale value across an epoch
     boundary (monitor windows roll on barrier-aligned instants). *)
  Engine.flush_gauges t.engines.(s);
  (* [Engine.next_at_ns] uses the same [max_int] empty-queue sentinel
     as [no_event], and neither side boxes anything. *)
  t.next_at_ns.(s) <- Engine.next_at_ns t.engines.(s);
  t.user_live.(s) <- Engine.pending_user t.engines.(s)

(* Single-shard mode delegates to the plain engine loop, so an
   unsharded scenario wrapped in a 1-shard runner is byte-identical to
   calling {!Engine.run} directly.  Self-posted messages are delivered
   by draining around the run until the box empties. *)
let run_single t ?until () =
  let rec go () =
    drain t 0;
    Engine.run ?until t.engines.(0);
    if not (Mailbox.is_empty t.boxes.(0).(0)) then go ()
  in
  go ()

let run ?(domains = 1) ?until t =
  if domains < 1 then invalid_arg "Shard.run: domains < 1";
  if t.running then invalid_arg "Shard.run: already running";
  t.running <- true;
  Fun.protect
    ~finally:(fun () -> t.running <- false)
    (fun () ->
      let n = Array.length t.engines in
      if n = 1 then run_single t ?until ()
      else begin
        let workers =
          if Par.available then Stdlib.max 1 (Stdlib.min domains n) else 1
        in
        let until_ns = Option.map Time.to_ns until in
        (* Messages posted during setup enter the first epoch. *)
        for d = 0 to n - 1 do
          drain t d;
          publish t d
        done;
        Par.run ~workers (fun ~worker ~sync ->
            let continue = ref true in
            while !continue do
              (* Every worker computes the epoch identically from the
                 state published at the last barrier. *)
              let t_min = Array.fold_left Stdlib.min no_event t.next_at_ns in
              let finished =
                match until_ns with
                | Some u -> t_min > u
                | None ->
                    t_min = no_event
                    || Array.fold_left ( + ) 0 t.user_live = 0
              in
              if finished then continue := false
              else begin
                if worker = 0 then t.epochs <- t.epochs + 1;
                let horizon =
                  let h = t_min + t.lookahead_ns in
                  match until_ns with
                  | Some u -> Stdlib.min h (u + 1)
                  | None -> h
                in
                let s = ref worker in
                while !s < n do
                  Engine.run_until_ns t.engines.(!s) (horizon - 1);
                  s := !s + workers
                done;
                sync ();
                let s = ref worker in
                while !s < n do
                  drain t !s;
                  publish t !s;
                  s := !s + workers
                done;
                sync ()
              end
            done);
        (* Leave every clock where Engine.run ~until would: advanced to
           [until] even when a shard ran out of events early. *)
        match until with
        | Some u -> Array.iter (fun e -> Engine.run e ~until:u) t.engines
        | None -> ()
      end)
