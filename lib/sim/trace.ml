type arg =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type phase = Instant | Complete | Flow_start | Flow_step | Flow_end

type event = {
  ev_ts : Time.t;
  ev_dur : Time.t option;
  ev_phase : phase;
  ev_sub : Subsystem.t;
  ev_cat : string;
  ev_name : string;
  ev_flow : int;  (* flow id, [no_flow] when uncorrelated *)
  ev_args : (string * arg) list;
}

type t = {
  mutable cap : int option;  (* None = unbounded *)
  mutable enabled : bool;
  mutable flows : bool;  (* flow recording requested *)
  mutable cells : bool;  (* per-cell detail requested *)
  mutable f_on : bool;  (* enabled && flows, precomputed *)
  mutable c_on : bool;  (* enabled && cells, precomputed *)
  mutable next_flow : int;
  mutable entries : event option array;
  mutable head : int;  (* next write position (bounded mode) *)
  mutable count : int;
  mutable dropped : int;
}

let no_flow = -1

type span =
  | Null_span
  | Span of {
      sp_ts : Time.t;
      sp_sub : Subsystem.t;
      sp_cat : string;
      sp_name : string;
      sp_flow : int;
      sp_args : (string * arg) list;
    }

let create ?(capacity = 4096) ?(unbounded = false) ?(enabled = true) () =
  let cap = if unbounded then None else Some capacity in
  let initial = match cap with Some c -> c | None -> 64 in
  {
    cap;
    enabled;
    flows = false;
    cells = true;
    f_on = false;
    c_on = enabled;
    next_flow = 1;
    entries = Array.make (Stdlib.max 1 initial) None;
    head = 0;
    count = 0;
    dropped = 0;
  }

let default = create ~enabled:false ()

let refresh t =
  t.f_on <- t.enabled && t.flows;
  t.c_on <- t.enabled && t.cells

let enable t b =
  t.enabled <- b;
  refresh t

let enabled t = t.enabled

let set_flows t b =
  t.flows <- b;
  refresh t

let set_cell_detail t b =
  t.cells <- b;
  refresh t

let flows_on t = t.f_on
let cell_detail_on t = t.c_on
let alloc_flow t =
  let id = t.next_flow in
  t.next_flow <- id + 1;
  id

let length t = t.count
let dropped t = t.dropped

let clear t =
  Array.fill t.entries 0 (Array.length t.entries) None;
  t.head <- 0;
  t.count <- 0;
  t.dropped <- 0

(* Resizing mid-run restarts the sink: the new ring starts empty and
   the drop counter restarts at zero, so post-resize statistics are
   about the new capacity only. *)
let set_capacity t cap =
  t.cap <- cap;
  let size = match cap with Some c -> Stdlib.max 1 c | None -> 64 in
  t.entries <- Array.make size None;
  t.head <- 0;
  t.count <- 0;
  t.dropped <- 0

let push t ev =
  if t.enabled then begin
    match t.cap with
    | Some c ->
        if t.count = c then t.dropped <- t.dropped + 1
        else t.count <- t.count + 1;
        t.entries.(t.head) <- Some ev;
        t.head <- (t.head + 1) mod c
    | None ->
        if t.count = Array.length t.entries then begin
          let bigger = Array.make (2 * t.count) None in
          Array.blit t.entries 0 bigger 0 t.count;
          t.entries <- bigger
        end;
        t.entries.(t.count) <- Some ev;
        t.count <- t.count + 1
  end

let instant t ~ts ~sub ?(cat = "") ?(flow = no_flow) ?(args = []) name =
  push t
    {
      ev_ts = ts;
      ev_dur = None;
      ev_phase = Instant;
      ev_sub = sub;
      ev_cat = cat;
      ev_name = name;
      ev_flow = flow;
      ev_args = args;
    }

let complete t ~ts ~dur ~sub ?(cat = "") ?(flow = no_flow) ?(args = []) name =
  push t
    {
      ev_ts = ts;
      ev_dur = Some dur;
      ev_phase = Complete;
      ev_sub = sub;
      ev_cat = cat;
      ev_name = name;
      ev_flow = flow;
      ev_args = args;
    }

let flow_event t phase ~ts ~sub ~cat ~flow ~args name =
  if t.f_on then
    push t
      {
        ev_ts = ts;
        ev_dur = None;
        ev_phase = phase;
        ev_sub = sub;
        ev_cat = cat;
        ev_name = name;
        ev_flow = flow;
        ev_args = args;
      }

let flow_start t ~ts ~sub ?(cat = "flow") ?(args = []) ~flow name =
  flow_event t Flow_start ~ts ~sub ~cat ~flow ~args name

let flow_step t ~ts ~sub ?(cat = "flow") ?(args = []) ~flow name =
  flow_event t Flow_step ~ts ~sub ~cat ~flow ~args name

let flow_end t ~ts ~sub ?(cat = "flow") ?(args = []) ~flow name =
  flow_event t Flow_end ~ts ~sub ~cat ~flow ~args name

let span_begin t ~ts ~sub ?(cat = "") ?(flow = no_flow) ?(args = []) name =
  if not t.enabled then Null_span
  else
    Span
      {
        sp_ts = ts;
        sp_sub = sub;
        sp_cat = cat;
        sp_name = name;
        sp_flow = flow;
        sp_args = args;
      }

let span_end t ~ts ?(args = []) span =
  match span with
  | Null_span -> ()
  | Span s ->
      complete t ~ts:s.sp_ts
        ~dur:(Time.max Time.zero (Time.sub ts s.sp_ts))
        ~sub:s.sp_sub ~cat:s.sp_cat ~flow:s.sp_flow ~args:(s.sp_args @ args)
        s.sp_name

let events t =
  let result = ref [] in
  let len = Array.length t.entries in
  for i = 0 to t.count - 1 do
    let idx =
      match t.cap with
      | Some _ -> (t.head - 1 - i + (2 * len)) mod len
      | None -> t.count - 1 - i
    in
    match t.entries.(idx) with
    | Some e -> result := e :: !result
    | None -> ()
  done;
  !result

(* ------------------------------------------------------------------ *)
(* Legacy string API: a thin shim over the typed sink, kept so call
   sites and tests that predate typed events continue to work. *)

let record t time msg = instant t ~ts:time ~sub:Subsystem.Sim ~cat:"legacy" msg

let recordf t time fmt =
  Format.kasprintf (fun msg -> if t.enabled then record t time msg) fmt

let to_list t = List.map (fun e -> (e.ev_ts, e.ev_name)) (events t)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  if t.dropped > 0 then
    Format.fprintf fmt "(%d earlier entries dropped)@," t.dropped;
  List.iter
    (fun (time, msg) -> Format.fprintf fmt "%a %s@," Time.pp time msg)
    (to_list t);
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* Exporters. *)

let json_of_arg = function
  | Str s -> Json.String s
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Bool b -> Json.Bool b

let json_of_args args =
  Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args)

(* Chrome trace_event format (the JSON object flavour), loadable in
   about:tracing and https://ui.perfetto.dev.  Timestamps are in
   microseconds; each subsystem renders as its own named thread lane,
   and flow events render as arrows between the slices they bind to. *)
let to_chrome t =
  let evs = events t in
  let lanes =
    List.sort_uniq Subsystem.compare (List.map (fun e -> e.ev_sub) evs)
  in
  let process_meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String "pegasus") ]);
      ]
  in
  let thread_meta sub =
    Json.Obj
      [
        ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int (Subsystem.lane sub));
        ("args", Json.Obj [ ("name", Json.String (Subsystem.to_string sub)) ]);
      ]
  in
  (* Final metadata record carrying the ring's drop counter, so a
     truncated trace is detectable from inside the event stream. *)
  let dropped_meta =
    Json.Obj
      [
        ("name", Json.String "trace_dropped");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("dropped", Json.Int t.dropped) ]);
      ]
  in
  let event e =
    let base =
      [
        ("name", Json.String e.ev_name);
        ("cat", Json.String (if e.ev_cat = "" then "default" else e.ev_cat));
        ("ts", Json.Float (Time.to_us_f e.ev_ts));
        ("pid", Json.Int 1);
        ("tid", Json.Int (Subsystem.lane e.ev_sub));
        ( "args",
          json_of_args
            ((("subsystem", Str (Subsystem.to_string e.ev_sub))
             :: (if e.ev_flow >= 0 then [ ("flow", Int e.ev_flow) ] else []))
            @ e.ev_args) );
      ]
    in
    match e.ev_phase with
    | Instant ->
        Json.Obj (("ph", Json.String "i") :: ("s", Json.String "t") :: base)
    | Complete ->
        let dur = match e.ev_dur with Some d -> d | None -> Time.zero in
        Json.Obj
          (("ph", Json.String "X")
          :: ("dur", Json.Float (Time.to_us_f dur))
          :: base)
    | Flow_start ->
        Json.Obj (("ph", Json.String "s") :: ("id", Json.Int e.ev_flow) :: base)
    | Flow_step ->
        Json.Obj (("ph", Json.String "t") :: ("id", Json.Int e.ev_flow) :: base)
    | Flow_end ->
        Json.Obj
          (("ph", Json.String "f")
          :: ("bp", Json.String "e")
          :: ("id", Json.Int e.ev_flow)
          :: base)
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          ((process_meta :: List.map thread_meta lanes)
          @ List.map event evs @ [ dropped_meta ]) );
      ("displayTimeUnit", Json.String "ns");
      ("otherData", Json.Obj [ ("dropped", Json.Int t.dropped) ]);
    ]

let ph_string = function
  | Instant -> "I"
  | Complete -> "X"
  | Flow_start -> "s"
  | Flow_step -> "t"
  | Flow_end -> "f"

let json_of_event e =
  Json.Obj
    ([
       ("ts_ns", Json.Int (Time.to_ns e.ev_ts));
       ("ph", Json.String (ph_string e.ev_phase));
       ("sub", Json.String (Subsystem.to_string e.ev_sub));
       ("cat", Json.String e.ev_cat);
       ("name", Json.String e.ev_name);
     ]
    @ (if e.ev_flow >= 0 then [ ("flow", Json.Int e.ev_flow) ] else [])
    @ (match e.ev_dur with
      | Some d -> [ ("dur_ns", Json.Int (Time.to_ns d)) ]
      | None -> [])
    @ [ ("args", json_of_args e.ev_args) ])

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Json.to_buffer buf (json_of_event e);
      Buffer.add_char buf '\n')
    (events t);
  (* Footer line: the drop counter, so consumers of a truncated ring
     know how much is missing. *)
  Json.to_buffer buf
    (Json.Obj
       [ ("meta", Json.String "dropped"); ("dropped", Json.Int t.dropped) ]);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let write_chrome t path = Json.to_file path (to_chrome t)

let write_jsonl t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl t))
