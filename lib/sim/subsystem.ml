type t = Atm | Nemesis | Pfs | Rpc | Naming | Sim | Other of string

let to_string = function
  | Atm -> "atm"
  | Nemesis -> "nemesis"
  | Pfs -> "pfs"
  | Rpc -> "rpc"
  | Naming -> "naming"
  | Sim -> "sim"
  | Other s -> s

let compare a b = String.compare (to_string a) (to_string b)
let equal a b = compare a b = 0
let pp fmt t = Format.pp_print_string fmt (to_string t)

(* Stable lane ids for trace viewers: one "thread" per subsystem. *)
let lane = function
  | Sim -> 0
  | Atm -> 1
  | Nemesis -> 2
  | Pfs -> 3
  | Rpc -> 4
  | Naming -> 5
  | Other _ -> 6
