(** Minimal JSON serialiser for the observability exporters.

    Emit-only: the simulator produces traces and metric dumps for
    external tools (Perfetto, jq, CI artifacts) and never parses JSON
    back.  Strings are escaped per RFC 8259; non-finite floats are
    emitted as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val to_file : string -> t -> unit
(** Write the value followed by a newline, creating/truncating [path]. *)
