(* Offline audit engine over causal flow traces.

   Consumes the flow events recorded by Trace (Flow_start / Flow_step /
   Flow_end), reconstructs each flow's hop sequence, and produces a
   deterministic per-stream QoS report: stage-latency breakdown,
   end-to-end latency, inter-flow jitter, deadline-miss attribution and
   a critical-path summary.

   Stage model: a flow's events, in time order, partition its lifetime.
   The interval ending at event [e] is attributed to the stage named
   [e.ev_name]; the flow_start event opens the clock and owns no
   interval.  Summing every interval therefore reconstructs the full
   end-to-end latency — attribution is exhaustive by construction, and
   the report states the achieved fraction explicitly so a consumer can
   verify it. *)

type stage = {
  sg_name : string;
  sg_count : int;  (* intervals observed across the stream's flows *)
  sg_p50_ns : float;
  sg_p95_ns : float;
  sg_p99_ns : float;
  sg_mean_ns : float;
  sg_max_ns : float;
  sg_share : float;  (* fraction of the stream's total attributed time *)
  sg_misses : int;  (* deadline misses attributed to this stage *)
}

type stream = {
  st_label : string;
  st_flows : int;  (* completed flows (start and end both seen) *)
  st_incomplete : int;  (* flows missing their end event *)
  st_stages : stage list;  (* first-appearance order *)
  st_e2e_p50_ns : float;
  st_e2e_p95_ns : float;
  st_e2e_p99_ns : float;
  st_e2e_mean_ns : float;
  st_e2e_max_ns : float;
  st_jitter_mean_ns : float;  (* mean |delta| of consecutive e2e *)
  st_jitter_max_ns : float;
  st_attributed : float;  (* attributed time / total e2e time *)
  st_misses : int;
  st_critical : string option;  (* stage with the largest share *)
}

type report = {
  rp_streams : stream list;  (* sorted by label *)
  rp_flows : int;  (* completed flows across all streams *)
  rp_incomplete : int;
  rp_orphan_events : int;  (* flow events whose flow has no start *)
  rp_deadline_ns : int option;
}

(* ------------------------------------------------------------------ *)
(* Construction. *)

type acc = {
  mutable fa_events : Trace.event list;  (* newest first *)
  mutable fa_started : bool;
  mutable fa_ended : bool;
}

let arg_stream args =
  match List.assoc_opt "stream" args with
  | Some (Trace.Str s) -> Some s
  | _ -> None

let ns ev = Time.to_ns ev.Trace.ev_ts

let build ?deadline_ns events =
  (* Group flow events by id, preserving trace (time) order. *)
  let flows : (int, acc) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  let orphans = ref 0 in
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.ev_phase with
      | Trace.Instant | Trace.Complete -> ()
      | Trace.Flow_start | Trace.Flow_step | Trace.Flow_end ->
          let a =
            match Hashtbl.find_opt flows e.ev_flow with
            | Some a -> a
            | None ->
                let a =
                  { fa_events = []; fa_started = false; fa_ended = false }
                in
                Hashtbl.add flows e.ev_flow a;
                order := e.ev_flow :: !order;
                a
          in
          a.fa_events <- e :: a.fa_events;
          (match e.ev_phase with
          | Trace.Flow_start -> a.fa_started <- true
          | Trace.Flow_end -> a.fa_ended <- true
          | _ -> ()))
    events;
  (* Partition flows into streams keyed by the start event's "stream"
     arg (or its name).  Flows without a start only contribute to the
     orphan count. *)
  let streams : (string, (int * Trace.event list) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let stream_order = ref [] in
  let complete = ref 0 and incomplete = ref 0 in
  List.iter
    (fun id ->
      let a = Hashtbl.find flows id in
      (* Train-path hops are committed ahead of time with future
         timestamps, so record order within a flow is not guaranteed to
         be ts order; normalise. *)
      let evs =
        List.stable_sort
          (fun (x : Trace.event) y -> compare (ns x) (ns y))
          (List.rev a.fa_events)
      in
      if not a.fa_started then orphans := !orphans + List.length evs
      else begin
        if a.fa_ended then incr complete else incr incomplete;
        let start =
          List.find (fun e -> e.Trace.ev_phase = Trace.Flow_start) evs
        in
        let label =
          match arg_stream start.Trace.ev_args with
          | Some s -> s
          | None -> start.Trace.ev_name
        in
        let bucket =
          match Hashtbl.find_opt streams label with
          | Some r -> r
          | None ->
              let r = ref [] in
              Hashtbl.add streams label r;
              stream_order := label :: !stream_order;
              r
        in
        bucket := (id, evs) :: !bucket
      end)
    (List.rev !order);
  let labels = List.sort String.compare (List.rev !stream_order) in
  let mk_stream label =
    let flows = List.rev !(Hashtbl.find streams label) in
    (* Completed flows ordered by (start ts, id) for jitter. *)
    let done_flows =
      List.filter
        (fun (_, evs) ->
          List.exists
            (fun e -> e.Trace.ev_phase = Trace.Flow_end)
            evs)
        flows
    in
    let done_flows =
      List.stable_sort
        (fun (ia, a) (ib, b) ->
          let c = compare (ns (List.hd a)) (ns (List.hd b)) in
          if c <> 0 then c else compare ia ib)
        done_flows
    in
    let n_done = List.length done_flows in
    let n_incomplete = List.length flows - n_done in
    (* Stage samples, in first-appearance order. *)
    let stage_order = ref [] in
    let stage_samples : (string, Stats.Samples.t) Hashtbl.t =
      Hashtbl.create 16
    in
    let stage_total : (string, float ref) Hashtbl.t = Hashtbl.create 16 in
    let samples_for name =
      match Hashtbl.find_opt stage_samples name with
      | Some s -> s
      | None ->
          let s = Stats.Samples.create () in
          Hashtbl.add stage_samples name s;
          Hashtbl.add stage_total name (ref 0.0);
          stage_order := name :: !stage_order;
          s
    in
    let e2e = Stats.Samples.create () in
    let total_e2e = ref 0.0 and total_attr = ref 0.0 in
    (* Per-flow interval lists, kept for miss attribution. *)
    let flow_intervals =
      List.map
        (fun (_, evs) ->
          let start =
            List.find (fun e -> e.Trace.ev_phase = Trace.Flow_start) evs
          in
          let t0 = ns start in
          let prev = ref t0 in
          let intervals =
            List.filter_map
              (fun e ->
                if e == start then None
                else begin
                  let d = float_of_int (ns e - !prev) in
                  prev := ns e;
                  let s = samples_for e.Trace.ev_name in
                  Stats.Samples.add s d;
                  let tot = Hashtbl.find stage_total e.Trace.ev_name in
                  tot := !tot +. d;
                  Some (e.Trace.ev_name, d)
                end)
              evs
          in
          let latency = float_of_int (!prev - t0) in
          Stats.Samples.add e2e latency;
          total_e2e := !total_e2e +. latency;
          total_attr :=
            !total_attr +. List.fold_left (fun a (_, d) -> a +. d) 0.0 intervals;
          (intervals, latency))
        done_flows
    in
    (* Deadline misses: attributed to the stage that ate the most slack
       relative to its stream-median duration. *)
    let stage_misses : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
    let misses = ref 0 in
    (match deadline_ns with
    | None -> ()
    | Some dl ->
        let dl = float_of_int dl in
        List.iter
          (fun (intervals, latency) ->
            if latency > dl then begin
              incr misses;
              let worst = ref None in
              List.iter
                (fun (name, d) ->
                  let med =
                    Stats.Samples.percentile
                      (Hashtbl.find stage_samples name)
                      50.0
                  in
                  let slack = d -. med in
                  match !worst with
                  | Some (_, s) when s >= slack -> ()
                  | _ -> worst := Some (name, slack))
                intervals;
              match !worst with
              | None -> ()
              | Some (name, _) ->
                  let r =
                    match Hashtbl.find_opt stage_misses name with
                    | Some r -> r
                    | None ->
                        let r = ref 0 in
                        Hashtbl.add stage_misses name r;
                        r
                  in
                  incr r
            end)
          flow_intervals);
    let grand_total =
      Hashtbl.fold (fun _ tot acc -> acc +. !tot) stage_total 0.0
    in
    let stages =
      List.rev_map
        (fun name ->
          let s = Hashtbl.find stage_samples name in
          {
            sg_name = name;
            sg_count = Stats.Samples.count s;
            sg_p50_ns = Stats.Samples.percentile s 50.0;
            sg_p95_ns = Stats.Samples.percentile s 95.0;
            sg_p99_ns = Stats.Samples.percentile s 99.0;
            sg_mean_ns = Stats.Samples.mean s;
            sg_max_ns = Stats.Samples.max s;
            sg_share =
              (if grand_total > 0.0 then
                 !(Hashtbl.find stage_total name) /. grand_total
               else 0.0);
            sg_misses =
              (match Hashtbl.find_opt stage_misses name with
              | Some r -> !r
              | None -> 0);
          })
        !stage_order
    in
    let critical =
      List.fold_left
        (fun acc sg ->
          match acc with
          | Some best when best.sg_share >= sg.sg_share -> acc
          | _ -> Some sg)
        None stages
    in
    (* Inter-flow jitter over consecutive end-to-end latencies. *)
    let jitter_mean, jitter_max =
      let rec deltas acc = function
        | (_, a) :: ((_, b) :: _ as rest) ->
            deltas (Float.abs (b -. a) :: acc) rest
        | _ -> acc
      in
      match deltas [] flow_intervals with
      | [] -> (0.0, 0.0)
      | ds ->
          let n = float_of_int (List.length ds) in
          ( List.fold_left ( +. ) 0.0 ds /. n,
            List.fold_left Float.max 0.0 ds )
    in
    let pc p = if n_done = 0 then 0.0 else Stats.Samples.percentile e2e p in
    {
      st_label = label;
      st_flows = n_done;
      st_incomplete = n_incomplete;
      st_stages = stages;
      st_e2e_p50_ns = pc 50.0;
      st_e2e_p95_ns = pc 95.0;
      st_e2e_p99_ns = pc 99.0;
      st_e2e_mean_ns = (if n_done = 0 then 0.0 else Stats.Samples.mean e2e);
      st_e2e_max_ns = (if n_done = 0 then 0.0 else Stats.Samples.max e2e);
      st_jitter_mean_ns = jitter_mean;
      st_jitter_max_ns = jitter_max;
      st_attributed =
        (if !total_e2e > 0.0 then !total_attr /. !total_e2e else 1.0);
      st_misses = !misses;
      st_critical =
        (match critical with Some sg -> Some sg.sg_name | None -> None);
    }
  in
  {
    rp_streams = List.map mk_stream labels;
    rp_flows = !complete;
    rp_incomplete = !incomplete;
    rp_orphan_events = !orphans;
    rp_deadline_ns = deadline_ns;
  }

let of_trace ?deadline_ns tr = build ?deadline_ns (Trace.events tr)

(* ------------------------------------------------------------------ *)
(* Rendering.  Both renderers format every float through %.2f of a
   microsecond value, so output is a deterministic function of the
   report. *)

let us f = f /. 1000.0

let pp fmt r =
  let line = String.make 74 '-' in
  Format.fprintf fmt "flows: %d completed, %d incomplete, %d orphan events@."
    r.rp_flows r.rp_incomplete r.rp_orphan_events;
  (match r.rp_deadline_ns with
  | Some dl -> Format.fprintf fmt "deadline: %.2f us@." (us (float_of_int dl))
  | None -> ());
  List.iter
    (fun st ->
      Format.fprintf fmt "%s@." line;
      Format.fprintf fmt "stream %s: %d flows%s@." st.st_label st.st_flows
        (if st.st_incomplete > 0 then
           Printf.sprintf " (+%d incomplete)" st.st_incomplete
         else "");
      Format.fprintf fmt
        "  e2e us: p50 %.2f  p95 %.2f  p99 %.2f  mean %.2f  max %.2f@."
        (us st.st_e2e_p50_ns) (us st.st_e2e_p95_ns) (us st.st_e2e_p99_ns)
        (us st.st_e2e_mean_ns) (us st.st_e2e_max_ns);
      Format.fprintf fmt "  jitter us: mean %.2f  max %.2f@."
        (us st.st_jitter_mean_ns) (us st.st_jitter_max_ns);
      Format.fprintf fmt "  attributed: %.1f%%  misses: %d%s@."
        (100.0 *. st.st_attributed) st.st_misses
        (match st.st_critical with
        | Some c -> Printf.sprintf "  critical stage: %s" c
        | None -> "");
      Format.fprintf fmt "  %-24s %6s %9s %9s %9s %7s %6s@." "stage" "n"
        "p50us" "p95us" "p99us" "share" "miss";
      List.iter
        (fun sg ->
          Format.fprintf fmt "  %-24s %6d %9.2f %9.2f %9.2f %6.1f%% %6d@."
            sg.sg_name sg.sg_count (us sg.sg_p50_ns) (us sg.sg_p95_ns)
            (us sg.sg_p99_ns) (100.0 *. sg.sg_share) sg.sg_misses)
        st.st_stages)
    r.rp_streams

let json_us f = Json.Float (Float.round (f /. 10.0) /. 100.0)

let stage_json sg =
  Json.Obj
    [
      ("stage", Json.String sg.sg_name);
      ("count", Json.Int sg.sg_count);
      ("p50_us", json_us sg.sg_p50_ns);
      ("p95_us", json_us sg.sg_p95_ns);
      ("p99_us", json_us sg.sg_p99_ns);
      ("mean_us", json_us sg.sg_mean_ns);
      ("max_us", json_us sg.sg_max_ns);
      ("share", Json.Float (Float.round (sg.sg_share *. 1000.0) /. 1000.0));
      ("misses", Json.Int sg.sg_misses);
    ]

let stream_json st =
  Json.Obj
    [
      ("stream", Json.String st.st_label);
      ("flows", Json.Int st.st_flows);
      ("incomplete", Json.Int st.st_incomplete);
      ( "e2e_us",
        Json.Obj
          [
            ("p50", json_us st.st_e2e_p50_ns);
            ("p95", json_us st.st_e2e_p95_ns);
            ("p99", json_us st.st_e2e_p99_ns);
            ("mean", json_us st.st_e2e_mean_ns);
            ("max", json_us st.st_e2e_max_ns);
          ] );
      ( "jitter_us",
        Json.Obj
          [
            ("mean", json_us st.st_jitter_mean_ns);
            ("max", json_us st.st_jitter_max_ns);
          ] );
      ( "attributed",
        Json.Float (Float.round (st.st_attributed *. 1000.0) /. 1000.0) );
      ("misses", Json.Int st.st_misses);
      ( "critical_stage",
        match st.st_critical with
        | Some c -> Json.String c
        | None -> Json.Null );
      ("stages", Json.List (List.map stage_json st.st_stages));
    ]

let to_json r =
  Json.Obj
    [
      ("schema", Json.String "pegasus-audit/1");
      ("flows", Json.Int r.rp_flows);
      ("incomplete", Json.Int r.rp_incomplete);
      ("orphan_events", Json.Int r.rp_orphan_events);
      ( "deadline_us",
        match r.rp_deadline_ns with
        | Some dl -> json_us (float_of_int dl)
        | None -> Json.Null );
      ("streams", Json.List (List.map stream_json r.rp_streams));
    ]
