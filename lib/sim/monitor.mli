(** Online SLO evaluation and burn-rate alerting in simulated time.

    A monitor binds {!Slo} specs to live signals on ONE engine and
    evaluates them as the simulation runs: each objective accumulates
    into tumbling sub-windows rolled by a daemon event chain pinned to
    absolute multiples of the window length, and a two-window burn-rate
    state machine drives the alert lifecycle

    {v Ok -> Pending -> Firing -> (resolved) Ok v}

    The {e fast} aggregate (last [fast_windows] sub-windows) fires the
    alert after [fire_after] consecutive breaching rolls; the {e slow}
    aggregate (last [slow_windows]) must recover past the hysteresis
    threshold for [resolve_after] consecutive rolls before the alert
    resolves.  A pending alert that sees one clean roll clears
    silently.  Every transition is emitted as a [Trace.instant]
    (category ["health"], names [slo_pending]/[slo_firing]/
    [slo_resolved]), counted in [sim/monitor.*] counters, and kept for
    the final report.

    {b Determinism.}  Rolls are ordinary engine events at instants that
    depend only on the window length; sources must read only state
    owned by the monitored engine.  Sharded rigs attach one monitor per
    shard (a source reaching across shards would race under parallel
    domains) and merge with {!report} over the monitors in shard order
    — {!Shard} flushes sampled gauges at every barrier, so the merged
    report is byte-identical at --domains 1/2/4. *)

type t

(** Where an objective's signal comes from.  All evaluation happens at
    roll instants, against state owned by the monitored engine. *)
type source =
  | Rate of (unit -> int)
      (** a monotone count; evaluated as its per-second delta over the
          window span *)
  | Ratio of { num : unit -> int; den : unit -> int }
      (** two monotone counts; evaluated as delta(num)/delta(den) over
          the span — e.g. cells lost per cell sent.  A span with zero
          denominator has no data and is healthy. *)
  | Level of (unit -> float)
      (** sampled once per roll; aggregated as the worst sample over
          the span (max for [Below], min for [Above]) *)
  | Windowed of { obs : Metrics.observer; q : float }
      (** every {!Metrics.sample} lands in the current sub-window;
          evaluated as percentile [q] over the span's samples *)

type state = Ok | Pending | Firing

val state_string : state -> string

val create : ?name:string -> Engine.t -> t
(** Registers [sim/monitor.pending], [sim/monitor.firing] and
    [sim/monitor.resolved] counters in the engine's registry. *)

val name : t -> string
val engine : t -> Engine.t

(** {1 Source constructors} *)

val counter_rate : Metrics.counter -> source
val counter_ratio : num:Metrics.counter -> den:Metrics.counter -> source
val gauge_level : Metrics.gauge -> source
val windowed : ?q:float -> Metrics.observer -> source
(** [q] defaults to 99.0.  Registering a windowed source attaches a
    sink to the observer, enabling it. *)

val register : t -> Slo.t -> source -> unit
(** Bind a spec to a signal and arm its roll chain.  The first
    sub-window closes at the next absolute multiple of [slo.window];
    counter sources are baselined now, so the first window covers the
    delta since registration. *)

val entries : t -> int
val firing_now : t -> int

(** {1 Reports} *)

type transition = { tr_at : Time.t; tr_event : string; tr_value : float }

type alert_report = {
  r_slo : Slo.t;
  r_state : state;
  r_rolls : int;
  r_breaches : int;
  r_fired : int;
  r_resolved : int;
  r_last : float option;  (** fast aggregate at the last roll *)
  r_worst : float option;  (** most violating fast aggregate seen *)
  r_transitions : transition list;  (** chronological *)
}

type report = { rep_name : string; rep_alerts : alert_report list }

val report : ?name:string -> t list -> report
(** Merge monitors (pass them in shard order for a deterministic
    multi-shard report); alerts appear in registration order within
    each monitor. *)

val pp : Format.formatter -> report -> unit
(** Deterministic human-readable rendering: every float through a fixed
    %.2f/%.1f format, no host state — byte-identical across runs and
    domain counts. *)

val to_json : report -> Json.t
(** Schema [pegasus-health/1]; values rounded to 2 decimals exactly as
    the table prints them, transition times in exact integer ns. *)
