(** Offline per-stream QoS audit over causal flow traces.

    Consumes the flow events recorded by {!Trace} and reconstructs, for
    each stream (flows sharing a ["stream"] label), where every
    request's end-to-end latency went: a stage-latency breakdown with
    exact p50/p95/p99 per hop, end-to-end latency and inter-flow
    jitter, deadline-miss attribution (which stage ate the slack,
    measured against that stage's stream median), and a critical-path
    summary (the stage with the largest share of total time).

    A flow's events partition its lifetime: the interval ending at each
    step or end event is attributed to the stage named by that event,
    so attribution is exhaustive by construction; [st_attributed]
    reports the achieved fraction.  The whole report — including both
    renderers — is a deterministic function of the input events. *)

type stage = {
  sg_name : string;
  sg_count : int;  (** Intervals observed across the stream's flows. *)
  sg_p50_ns : float;
  sg_p95_ns : float;
  sg_p99_ns : float;
  sg_mean_ns : float;
  sg_max_ns : float;
  sg_share : float;  (** Fraction of the stream's total attributed time. *)
  sg_misses : int;  (** Deadline misses attributed to this stage. *)
}

type stream = {
  st_label : string;
  st_flows : int;  (** Completed flows (start and end both seen). *)
  st_incomplete : int;  (** Flows missing their end event. *)
  st_stages : stage list;  (** First-appearance order. *)
  st_e2e_p50_ns : float;
  st_e2e_p95_ns : float;
  st_e2e_p99_ns : float;
  st_e2e_mean_ns : float;
  st_e2e_max_ns : float;
  st_jitter_mean_ns : float;
      (** Mean |delta| between consecutive flows' end-to-end latencies. *)
  st_jitter_max_ns : float;
  st_attributed : float;  (** Attributed time / total end-to-end time. *)
  st_misses : int;
  st_critical : string option;  (** Stage with the largest share. *)
}

type report = {
  rp_streams : stream list;  (** Sorted by label. *)
  rp_flows : int;
  rp_incomplete : int;
  rp_orphan_events : int;  (** Flow events whose flow has no start. *)
  rp_deadline_ns : int option;
}

val build : ?deadline_ns:int -> Trace.event list -> report
(** Build a report from raw events (oldest first, as {!Trace.events}
    returns them).  When [deadline_ns] is given, completed flows whose
    end-to-end latency exceeds it count as deadline misses. *)

val of_trace : ?deadline_ns:int -> Trace.t -> report
(** [build] over the trace's retained events. *)

val pp : Format.formatter -> report -> unit
(** Fixed-width per-stream stage table, deterministic. *)

val to_json : report -> Json.t
(** JSON rendering (schema ["pegasus-audit/1"]), deterministic. *)
