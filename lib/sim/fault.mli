(** Deterministic fault injection.

    A fault plan owns a seeded RNG and schedules failure transitions
    against an engine: one-shot failure windows, permanent failures,
    renewal-process link outages and latency spikes, plus Bernoulli
    decision streams for per-cell loss.  Everything is driven by the
    plan's {!Rng}, so a run is reproducible from the seed, and two runs
    with the same seed inject byte-identical fault sequences.

    The plan knows nothing about the components it breaks: callers pass
    closures ([down]/[up]/[set]/[clear]) that flip the actual switches
    — [Atm.Link.set_down], [Pfs.Disk.fail], and so on.  Every injected
    transition is counted in the [sim/fault.events] metric and, when
    tracing is on, recorded as an instant in the [fault] category. *)

type t

val create : ?seed:int64 -> Engine.t -> t
(** A fresh plan.  The default seed is a fixed constant, so plans
    created without a seed replay the same fault sequence. *)

val engine : t -> Engine.t

val rng : t -> Rng.t
(** The plan's generator — draw from it for ad-hoc decisions that must
    stay inside the plan's deterministic stream. *)

val fork : t -> t
(** A plan with an independent stream (for a different subsystem),
    sharing the parent's engine and counters. *)

val events_injected : t -> int
(** Fault transitions fired so far (downs, ups, spike edges). *)

val bernoulli : t -> p:float -> unit -> bool
(** [bernoulli t ~p] is a deterministic decision stream: each call is
    [true] with probability [p], drawn from a stream split off the
    plan's RNG.  Suitable for per-cell loss ({!Atm.Link.set_loss}). *)

val window :
  t -> at:Time.t -> duration:Time.t -> down:(unit -> unit) ->
  up:(unit -> unit) -> unit
(** Scripted transient failure: [down] fires at [at] (clamped to now),
    [up] fires [duration] later. *)

val permanent : t -> at:Time.t -> (unit -> unit) -> unit
(** Scripted permanent failure: the callback fires once at [at]. *)

val outages :
  t ->
  ?start:Time.t ->
  span:Time.t ->
  mean_up:Time.t ->
  mean_down:Time.t ->
  down:(unit -> unit) ->
  up:(unit -> unit) ->
  unit ->
  unit
(** Alternating renewal process over [start, start+span): healthy
    periods drawn exponentially with mean [mean_up], outages with mean
    [mean_down].  The component is always left healthy ([up]) by the
    end of the span. *)

val latency_spikes :
  t ->
  ?start:Time.t ->
  span:Time.t ->
  mean_gap:Time.t ->
  mean_duration:Time.t ->
  max_extra:Time.t ->
  set:(Time.t -> unit) ->
  clear:(unit -> unit) ->
  unit ->
  unit
(** Episodes of added latency over [start, start+span): gaps between
    spikes are exponential with mean [mean_gap], each spike lasts
    exponentially with mean [mean_duration] and adds a uniform extra
    delay in (0, max_extra] delivered through [set]; [clear] ends the
    spike and is guaranteed to have run by the end of the span. *)
