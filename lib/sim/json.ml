type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f || f = infinity || f = neg_infinity then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    (* Keep the output self-identifying as a float. *)
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string j);
      output_char oc '\n')
